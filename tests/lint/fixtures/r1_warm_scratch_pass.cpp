// gstg-lint fixture: R1 must accept the warmed-scratch idiom — growing a
// caller-owned buffer in place, allocations confined to throw statements,
// and a justified allow() for a deliberate one-time allocation.
#include <cstddef>
#include <string>
#include <vector>

namespace fixture {

class CapacityError : public std::runtime_error {
 public:
  explicit CapacityError(const std::string& message)
      : std::runtime_error("fixture: " + message) {}
};

int* leaked_sentinel() {
  // gstg-lint: allow(R1): one-time process-global sentinel, allocated once and leaked on purpose
  static int* sentinel = new int(0);
  return sentinel;
}

GSTG_HOT_NOALLOC
void hot_warm(std::vector<float>& scratch, std::size_t n) {
  if (n > (std::size_t{1} << 30)) {
    throw CapacityError("request too large: " + std::to_string(n));
  }
  scratch.resize(n);  // warmed scratch: steady-state no-op once grown
  for (std::size_t i = 0; i < n; ++i) scratch[i] = 0.0f;
  leaked_sentinel();
}

}  // namespace fixture
