// gstg-lint fixture: R3 must accept the project pattern — a typed error
// DERIVED from std::runtime_error — and the std::invalid_argument family
// for caller-misuse contracts.
#include <stdexcept>
#include <string>

namespace fixture {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& message)
      : std::runtime_error("parse: " + message) {}
};

void parse(const std::string& text, int limit) {
  if (limit <= 0) throw std::invalid_argument("limit must be positive");
  if (text.empty()) throw ParseError("empty input");
}

}  // namespace fixture
