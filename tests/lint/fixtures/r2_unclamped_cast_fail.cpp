// gstg-lint fixture: R2 must flag a float->int static_cast whose expression
// is not clamped — the exact footprint-to-cell bug class the rule guards.

namespace fixture {

int cell_of(float x, float inv_cell) {
  return static_cast<int>(x * inv_cell);  // unclamped: UB on huge/NaN x
}

}  // namespace fixture
