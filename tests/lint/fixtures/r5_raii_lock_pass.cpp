// gstg-lint fixture: R5 must accept RAII lock guards and template callables
// (no std::function type erasure, no libc rand).
#include <mutex>

namespace fixture {

std::mutex g_mutex;

template <typename Pick>
int safe_sample(const Pick& pick) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return pick();
}

}  // namespace fixture
