// gstg-lint fixture: R4 must accept a GSTG_* literal that is registered in
// kGstgEnvVars AND documented in docs/CONFIG.md.
#include <cstdlib>

namespace fixture {

const char* thread_override() { return std::getenv("GSTG_THREADS"); }

}  // namespace fixture
