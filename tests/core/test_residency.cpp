// Compressed residency (core/renderer.h + gaussian/compressed.h): the
// streamed block-decode render is bit-identical to the up-front-decode
// render on every bench scene — ResidencyMode::kVerify audits exactly that
// in-process — across thread counts and SIMD backends, with an
// allocation-free steady state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/runconfig.h"
#include "core/renderer.h"
#include "gaussian/compressed.h"
#include "render/simd_kernels.h"
#include "scene/scene.h"
#include "test_helpers.h"

// Global allocation counter, as in tests/core/test_renderer.cpp; see there
// for the GCC diagnostic rationale.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gstg {
namespace {

using testutil::make_camera;
using testutil::make_random_cloud;

bool images_identical(const Framebuffer& a, const Framebuffer& b) {
  return a.width() == b.width() && a.height() == b.height() && max_abs_diff(a, b) == 0.0f;
}

bool counters_equal(const RenderCounters& a, const RenderCounters& b) {
  return a.visible_gaussians == b.visible_gaussians && a.tile_pairs == b.tile_pairs &&
         a.sort_pairs == b.sort_pairs && a.bitmask_tests == b.bitmask_tests &&
         a.filter_checks == b.filter_checks && a.alpha_computations == b.alpha_computations &&
         a.blend_ops == b.blend_ops && a.total_pixels == b.total_pixels;
}

GsTgConfig config_with(ResidencyMode residency, std::size_t threads = 1) {
  GsTgConfig config;
  config.threads = threads;
  config.residency = residency;
  return config;
}

TEST(Residency, StreamedDecodeMatchesUpFrontDecodeOnBenchScenes) {
  for (const SceneInfo& info : algorithm_scenes()) {
    const Scene scene = generate_scene(info);
    const CompressedCloud compressed = CompressedCloud::encode(scene.cloud);

    FrameContext streamed;
    Renderer(config_with(ResidencyMode::kCompressed)).render(compressed, scene.camera, streamed);
    FrameContext upfront;
    Renderer(config_with(ResidencyMode::kFloat32)).render(compressed, scene.camera, upfront);
    EXPECT_TRUE(images_identical(streamed.image, upfront.image)) << info.name;
    EXPECT_TRUE(counters_equal(streamed.counters, upfront.counters)) << info.name;

    // Both must equal a plain fp32 render of the decoded cloud: the
    // compressed path changes residency, never the image.
    FrameContext plain;
    Renderer(config_with(ResidencyMode::kCompressed)).render(compressed.decode(), scene.camera,
                                                             plain);
    EXPECT_TRUE(images_identical(streamed.image, plain.image)) << info.name;
    EXPECT_TRUE(counters_equal(streamed.counters, plain.counters)) << info.name;
  }
}

TEST(Residency, KVerifyPassesOnAllBenchScenes) {
  // kVerify runs the streamed and up-front preprocesses and throws
  // ResidencyError on any splat-stream divergence; it must pass — and
  // produce the same image — on every bench scene and thread count.
  for (const SceneInfo& info : algorithm_scenes()) {
    const Scene scene = generate_scene(info);
    const CompressedCloud compressed = CompressedCloud::encode(scene.cloud);

    FrameContext reference;
    Renderer(config_with(ResidencyMode::kCompressed)).render(compressed, scene.camera, reference);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      FrameContext verified;
      const Renderer renderer(config_with(ResidencyMode::kVerify, threads));
      ASSERT_NO_THROW(renderer.render(compressed, scene.camera, verified))
          << info.name << " threads=" << threads;
      EXPECT_TRUE(images_identical(reference.image, verified.image))
          << info.name << " threads=" << threads;
      EXPECT_TRUE(counters_equal(reference.counters, verified.counters))
          << info.name << " threads=" << threads;
    }
  }
}

TEST(Residency, StreamedRenderDeterministicAcrossThreadsAndBackends) {
  const Scene scene = generate_scene("train");
  const CompressedCloud compressed = CompressedCloud::encode(scene.cloud);

  GsTgConfig reference_config = config_with(ResidencyMode::kCompressed);
  reference_config.simd = {SimdBackend::kScalar, ExpMode::kExact};
  FrameContext reference;
  Renderer(reference_config).render(compressed, scene.camera, reference);

  for (const SimdBackend backend : available_simd_backends()) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      GsTgConfig config = config_with(ResidencyMode::kCompressed, threads);
      config.simd = {backend, ExpMode::kExact};
      FrameContext got;
      Renderer(config).render(compressed, scene.camera, got);
      EXPECT_TRUE(images_identical(reference.image, got.image))
          << to_string(backend) << " threads=" << threads;
      EXPECT_TRUE(counters_equal(reference.counters, got.counters))
          << to_string(backend) << " threads=" << threads;
    }
  }
}

TEST(Residency, ContextReuseAcrossResidencyModesIsBitIdentical) {
  // One context cycling float32 -> compressed -> verify must keep producing
  // the reference image: scratch from one mode cannot leak into another.
  const GaussianCloud cloud = make_random_cloud(800, 7);
  const CompressedCloud compressed = CompressedCloud::encode(cloud);
  const Camera camera = make_camera(192, 128);

  FrameContext reference;
  Renderer(config_with(ResidencyMode::kCompressed)).render(compressed, camera, reference);

  FrameContext reused;
  for (const ResidencyMode mode : {ResidencyMode::kFloat32, ResidencyMode::kCompressed,
                                   ResidencyMode::kVerify, ResidencyMode::kCompressed}) {
    Renderer(config_with(mode)).render(compressed, camera, reused);
    EXPECT_TRUE(images_identical(reference.image, reused.image)) << to_string(mode);
  }
}

TEST(Residency, SteadyStateStreamedRenderAllocatesNothing) {
  // The point of decode-on-touch residency: after warm-up, rendering from
  // the fp16 form allocates nothing — the whole-cloud fp32 form never
  // materialises and the per-worker block scratch is reused.
  const CompressedCloud compressed = CompressedCloud::encode(make_random_cloud(700, 99));
  const Camera camera = make_camera();
  const Renderer renderer(config_with(ResidencyMode::kCompressed, /*threads=*/1));

  FrameContext ctx;
  renderer.render(compressed, camera, ctx);  // warm-up: grow every buffer
  renderer.render(compressed, camera, ctx);

  const std::size_t before = g_alloc_count.load();
  renderer.render(compressed, camera, ctx);
  const std::size_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u) << "steady-state compressed render allocated";
}

TEST(Residency, EnvOverrideSelectsTheMode) {
  ASSERT_EQ(setenv("GSTG_RESIDENCY", "float32", 1), 0);
  EXPECT_EQ(residency_mode_from_env(ResidencyMode::kCompressed), ResidencyMode::kFloat32);
  ASSERT_EQ(setenv("GSTG_RESIDENCY", "verify", 1), 0);
  EXPECT_EQ(residency_mode_from_env(ResidencyMode::kCompressed), ResidencyMode::kVerify);
  ASSERT_EQ(setenv("GSTG_RESIDENCY", "compressed", 1), 0);
  EXPECT_EQ(residency_mode_from_env(ResidencyMode::kFloat32), ResidencyMode::kCompressed);
  // Unknown values are ignored (with a one-time warning), unset falls back.
  ASSERT_EQ(setenv("GSTG_RESIDENCY", "bogus", 1), 0);
  EXPECT_EQ(residency_mode_from_env(ResidencyMode::kVerify), ResidencyMode::kVerify);
  ASSERT_EQ(unsetenv("GSTG_RESIDENCY"), 0);
  EXPECT_EQ(residency_mode_from_env(ResidencyMode::kFloat32), ResidencyMode::kFloat32);
}

TEST(Residency, ResidencyErrorIsATypedRuntimeError) {
  const ResidencyError error("streamed decode diverged");
  EXPECT_STREQ(error.what(), "residency: streamed decode diverged");
  EXPECT_THROW(throw ResidencyError("x"), std::runtime_error);
}

}  // namespace
}  // namespace gstg
