#include "core/grouping.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "../test_helpers.h"
#include "core/pipeline.h"
#include "render/preprocess.h"
#include "render/sort.h"

namespace gstg {
namespace {

using testutil::make_camera;

TEST(GsTgConfig, ValidatesGeometry) {
  GsTgConfig ok;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_EQ(ok.tiles_per_side(), 4);
  EXPECT_EQ(ok.tiles_per_group(), 16);

  GsTgConfig misaligned;
  misaligned.tile_size = 16;
  misaligned.group_size = 40;  // not a multiple
  EXPECT_THROW(misaligned.validate(), std::invalid_argument);

  GsTgConfig too_many;
  too_many.tile_size = 8;
  too_many.group_size = 128;  // 256 tiles per group > 64-bit mask
  EXPECT_THROW(too_many.validate(), std::invalid_argument);

  GsTgConfig negative;
  negative.tile_size = 0;
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  GsTgConfig eight64;  // the Fig. 11 "8+64" point: exactly 64 tiles
  eight64.tile_size = 8;
  eight64.group_size = 64;
  EXPECT_NO_THROW(eight64.validate());
  EXPECT_EQ(eight64.tiles_per_group(), 64);
}

TEST(GsTgConfig, LosslessGuaranteeMatrix) {
  GsTgConfig c;
  const auto set = [&](Boundary group, Boundary mask) {
    c.group_boundary = group;
    c.mask_boundary = mask;
    return c.lossless_guaranteed();
  };
  // Mask at least as tight as group: guaranteed.
  EXPECT_TRUE(set(Boundary::kAabb, Boundary::kAabb));
  EXPECT_TRUE(set(Boundary::kAabb, Boundary::kObb));
  EXPECT_TRUE(set(Boundary::kAabb, Boundary::kEllipse));
  EXPECT_TRUE(set(Boundary::kObb, Boundary::kObb));
  EXPECT_TRUE(set(Boundary::kObb, Boundary::kEllipse));
  EXPECT_TRUE(set(Boundary::kEllipse, Boundary::kEllipse));
  // Looser mask than group: not guaranteed.
  EXPECT_FALSE(set(Boundary::kEllipse, Boundary::kAabb));
  EXPECT_FALSE(set(Boundary::kEllipse, Boundary::kObb));
  EXPECT_FALSE(set(Boundary::kObb, Boundary::kAabb));
}

TEST(MaskBits, IndexLayout) {
  EXPECT_EQ(mask_bit_index(0, 0, 4), 0);
  EXPECT_EQ(mask_bit_index(3, 0, 4), 3);
  EXPECT_EQ(mask_bit_index(0, 1, 4), 4);
  EXPECT_EQ(mask_bit_index(3, 3, 4), 15);
  EXPECT_EQ(mask_bit_index(7, 7, 8), 63);
}

/// The central set property behind losslessness (paper section IV-B): for
/// every tile, { splats with the tile's bit set in their group entry } ==
/// { splats in the baseline per-tile list with the same boundary }.
TEST(Bitmasks, FilteredSetsEqualBaselineTileSets) {
  const Camera cam = make_camera(320, 256);
  const GaussianCloud cloud = testutil::make_random_cloud(1200, 61);
  GsTgConfig config;
  config.tile_size = 16;
  config.group_size = 64;
  config.group_boundary = Boundary::kEllipse;
  config.mask_boundary = Boundary::kEllipse;

  const GsTgFrameData data = build_gstg_frame(cloud, cam, config);

  RenderConfig rc;
  rc.tile_size = 16;
  rc.boundary = Boundary::kEllipse;
  RenderCounters counters;
  const auto splats = preprocess(cloud, cam, rc, counters);
  const CellGrid tile_grid = CellGrid::over_image(cam.width(), cam.height(), 16);
  const BinnedSplats baseline = bin_splats(splats, tile_grid, rc.boundary, 0, counters);

  const int r = config.tiles_per_side();
  for (int ty = 0; ty < tile_grid.cells_y; ++ty) {
    for (int tx = 0; tx < tile_grid.cells_x; ++tx) {
      const int t = tile_grid.cell_index(tx, ty);
      std::set<std::uint32_t> expected;
      for (const auto id : baseline.cell_list(t)) {
        expected.insert(splats[id].index);
      }
      const int gx = tx / r, gy = ty / r;
      const std::size_t g =
          static_cast<std::size_t>(data.frame.group_grid.cell_index(gx, gy));
      const TileMask bit = TileMask{1} << mask_bit_index(tx - gx * r, ty - gy * r, r);
      std::set<std::uint32_t> actual;
      for (std::uint32_t e = data.frame.group_bins.offsets[g];
           e < data.frame.group_bins.offsets[g + 1]; ++e) {
        if (data.frame.masks[e] & bit) {
          actual.insert(data.splats[data.frame.group_bins.splat_ids[e]].index);
        }
      }
      EXPECT_EQ(actual, expected) << "tile (" << tx << "," << ty << ")";
    }
  }
}

TEST(Bitmasks, NoBitsOutsideGroupWindow) {
  const Camera cam = make_camera(200, 150);  // non-multiple image size: edge groups
  const GaussianCloud cloud = testutil::make_random_cloud(600, 67);
  GsTgConfig config;
  config.tile_size = 16;
  config.group_size = 64;
  const GsTgFrameData data = build_gstg_frame(cloud, cam, config);
  const CellGrid& tiles = data.frame.tile_grid;
  const CellGrid& groups = data.frame.group_grid;
  const int rr = config.tiles_per_side();

  for (int gy = 0; gy < groups.cells_y; ++gy) {
    for (int gx = 0; gx < groups.cells_x; ++gx) {
      const std::size_t g = static_cast<std::size_t>(groups.cell_index(gx, gy));
      // Bits for tiles beyond the image's tile grid must never be set.
      TileMask legal = 0;
      for (int ly = 0; ly < rr; ++ly) {
        for (int lx = 0; lx < rr; ++lx) {
          if (gx * rr + lx < tiles.cells_x && gy * rr + ly < tiles.cells_y) {
            legal |= TileMask{1} << mask_bit_index(lx, ly, rr);
          }
        }
      }
      for (std::uint32_t e = data.frame.group_bins.offsets[g];
           e < data.frame.group_bins.offsets[g + 1]; ++e) {
        EXPECT_EQ(data.frame.masks[e] & ~legal, 0u);
      }
    }
  }
}

TEST(SortGroups, MasksTravelWithTheirSplats) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(400, 71);
  GsTgConfig config;
  const GsTgFrameData data = build_gstg_frame(cloud, cam, config);

  // Recompute masks from scratch for the *sorted* bins: each entry's mask
  // must match a fresh mask computed for its splat.
  RenderCounters scratch;
  const auto fresh = generate_bitmasks(data.splats, data.frame.group_bins, data.frame.tile_grid,
                                       config, scratch);
  ASSERT_EQ(fresh.size(), data.frame.masks.size());
  for (std::size_t e = 0; e < fresh.size(); ++e) {
    EXPECT_EQ(fresh[e], data.frame.masks[e]) << "entry " << e;
  }
}

TEST(SortGroups, GroupListsAreDepthSorted) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(700, 73);
  GsTgConfig config;
  const GsTgFrameData data = build_gstg_frame(cloud, cam, config);
  const auto& bins = data.frame.group_bins;
  for (int g = 0; g < bins.grid.cell_count(); ++g) {
    const auto list = bins.cell_list(g);
    for (std::size_t i = 1; i < list.size(); ++i) {
      const auto& a = data.splats[list[i - 1]];
      const auto& b = data.splats[list[i]];
      EXPECT_TRUE(a.depth < b.depth || (a.depth == b.depth && a.index < b.index));
    }
  }
}

TEST(Grouping, GroupPairsFarFewerThanTilePairs) {
  // The sorting-reduction claim: group-level pairs (GS-TG sort volume) are
  // much fewer than tile-level pairs (baseline sort volume).
  const Camera cam = make_camera(320, 256);
  const GaussianCloud cloud = testutil::make_random_cloud(1500, 79);
  GsTgConfig config;
  const GsTgFrameData data = build_gstg_frame(cloud, cam, config);

  RenderConfig rc;
  rc.tile_size = config.tile_size;
  rc.boundary = config.mask_boundary;
  RenderCounters counters;
  const auto splats = preprocess(cloud, cam, rc, counters);
  const CellGrid tile_grid = CellGrid::over_image(cam.width(), cam.height(), rc.tile_size);
  bin_splats(splats, tile_grid, rc.boundary, 0, counters);

  const std::size_t group_pairs = data.frame.group_bins.splat_ids.size();
  EXPECT_LT(group_pairs, counters.tile_pairs);
}

TEST(Grouping, AdversarialFootprintsSurviveGroupingAndBitmasks) {
  // Degenerate splats through the group-granularity callers of the
  // candidate-cell math: identify_groups and generate_bitmasks must not
  // perform unclamped float→int casts (UBSan) and must agree between flat
  // and hierarchical group binning.
  constexpr float nan = std::numeric_limits<float>::quiet_NaN();
  constexpr float inf = std::numeric_limits<float>::infinity();
  const auto splat = [](Vec2 center, Sym2 cov, float rho, std::uint32_t index) {
    ProjectedSplat s;
    s.center = center;
    s.cov = cov;
    s.conic = inverse(cov);
    s.depth = 1.0f + static_cast<float>(index);
    s.opacity = 0.9f;
    s.rho = rho;
    s.index = index;
    return s;
  };
  const std::vector<ProjectedSplat> splats = {
      splat({40, 40}, Sym2{1, 0, 1}, 1e30f, 0),   // huge rho: full cover
      splat({nan, 40}, Sym2{1, 0, 1}, 9.0f, 1),   // NaN mean: dropped
      splat({40, 40}, Sym2{nan, 0, 1}, 9.0f, 2),  // NaN covariance: dropped
      splat({-inf, 12}, Sym2{1, 0, 1}, 9.0f, 3),  // off-screen at -inf
      splat({70, 30}, Sym2{2, 0, 2}, 9.0f, 4),    // sane anchor
  };
  const CellGrid tile_grid = CellGrid::over_image(128, 96, 16);
  const CellGrid group_grid = CellGrid::over_image(128, 96, 64);

  GsTgConfig config;
  config.binning = BinningMode::kFlat;
  RenderCounters cf;
  const BinnedSplats flat = identify_groups(splats, group_grid, config, cf);
  config.binning = BinningMode::kVerify;  // hierarchical + flat identity audit
  RenderCounters ch;
  const BinnedSplats hier = identify_groups(splats, group_grid, config, ch);
  EXPECT_EQ(cf.tile_pairs, ch.tile_pairs);
  ASSERT_EQ(flat.offsets, hier.offsets);

  // Bitmask generation walks candidate_cells per entry; the huge-rho splat
  // must cover every tile of every group it reached.
  RenderCounters mc;
  const std::vector<TileMask> masks =
      generate_bitmasks(splats, flat, tile_grid, config, mc);
  ASSERT_EQ(masks.size(), flat.splat_ids.size());
  for (std::size_t e = 0; e < masks.size(); ++e) {
    if (flat.splat_ids[e] == 0) {
      EXPECT_NE(masks[e], 0u) << "entry " << e;
    }
  }
}

TEST(Grouping, MismatchedMaskArrayThrows) {
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(100, 83);
  GsTgConfig config;
  GsTgFrameData data = build_gstg_frame(cloud, cam, config);
  std::vector<TileMask> wrong(data.frame.masks.size() + 1, 0);
  RenderCounters counters;
  EXPECT_THROW(sort_groups(data.frame.group_bins, wrong, data.splats, 1, counters),
               std::invalid_argument);
}

}  // namespace
}  // namespace gstg
