// Persistent renderer (core/renderer.h): FrameContext reuse is bit-identical
// and allocation-free in the steady state, render_batch matches N independent
// render_gstg calls exactly, and the group radix sort is interchangeable
// with the comparison sort.
#include "core/renderer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/pipeline.h"
#include "scene/scene.h"
#include "test_helpers.h"

// --- Global allocation counter -------------------------------------------
// Counts every operator new in this binary; the steady-state test asserts
// the delta across a warmed-up render is zero. Kept trivially simple (malloc
// pass-through) so it composes with sanitizers.
//
// GCC's -Wmismatched-new-delete misfires on replaced global operators at -O2
// (it pairs an inlined `new` with the malloc inside it, then flags the
// matching free in `delete`); the pair below is consistent by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gstg {
namespace {

using testutil::make_camera;
using testutil::make_random_cloud;

bool images_identical(const Framebuffer& a, const Framebuffer& b) {
  return a.width() == b.width() && a.height() == b.height() && max_abs_diff(a, b) == 0.0f;
}

bool counters_equal(const RenderCounters& a, const RenderCounters& b) {
  return a.visible_gaussians == b.visible_gaussians && a.tile_pairs == b.tile_pairs &&
         a.sort_pairs == b.sort_pairs && a.bitmask_tests == b.bitmask_tests &&
         a.filter_checks == b.filter_checks && a.alpha_computations == b.alpha_computations &&
         a.blend_ops == b.blend_ops && a.total_pixels == b.total_pixels;
}

TEST(Renderer, MatchesRenderGstg) {
  const GaussianCloud cloud = make_random_cloud(600, 42);
  const Camera camera = make_camera();
  GsTgConfig config;
  config.threads = 1;

  const RenderResult oneshot = render_gstg(cloud, camera, config);

  const Renderer renderer(config);
  FrameContext ctx;
  renderer.render(cloud, camera, ctx);

  EXPECT_TRUE(images_identical(oneshot.image, ctx.image));
  EXPECT_TRUE(counters_equal(oneshot.counters, ctx.counters));
}

TEST(Renderer, ContextReuseIsBitIdentical) {
  const GaussianCloud cloud = make_random_cloud(800, 7);
  const Camera camera = make_camera(192, 128);
  GsTgConfig config;
  config.threads = 2;

  const Renderer renderer(config);
  FrameContext fresh;
  renderer.render(cloud, camera, fresh);
  const Framebuffer reference = fresh.image;
  const RenderCounters ref_counters = fresh.counters;

  FrameContext reused;
  for (int round = 0; round < 3; ++round) {
    renderer.render(cloud, camera, reused);
    EXPECT_TRUE(images_identical(reference, reused.image)) << "round " << round;
    EXPECT_TRUE(counters_equal(ref_counters, reused.counters)) << "round " << round;
  }
}

TEST(Renderer, ContextReuseAcrossCamerasMatchesFreshContexts) {
  const GaussianCloud cloud = make_random_cloud(500, 3);
  GsTgConfig config;
  config.threads = 1;
  const Renderer renderer(config);

  // Different resolutions force the context to regrow between frames.
  const Camera cameras[] = {make_camera(256, 192), make_camera(96, 64), make_camera(160, 160)};

  FrameContext reused;
  for (const Camera& camera : cameras) {
    FrameContext fresh;
    renderer.render(cloud, camera, fresh);
    renderer.render(cloud, camera, reused);
    EXPECT_TRUE(images_identical(fresh.image, reused.image));
    EXPECT_TRUE(counters_equal(fresh.counters, reused.counters));
  }
}

TEST(Renderer, SteadyStateAllocatesNothing) {
  const GaussianCloud cloud = make_random_cloud(700, 99);
  const Camera camera = make_camera();
  GsTgConfig config;
  config.threads = 1;  // worker threads would allocate their own state
  const Renderer renderer(config);

  FrameContext ctx;
  renderer.render(cloud, camera, ctx);  // warm-up: grow every buffer
  renderer.render(cloud, camera, ctx);

  const std::size_t before = g_alloc_count.load();
  renderer.render(cloud, camera, ctx);
  const std::size_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u) << "steady-state render allocated";
}

TEST(RenderBatch, BitIdenticalToSequentialRenders) {
  const Scene scene = generate_scene("train", RunScale{8, 64});
  const auto cameras = orbit_cameras(scene, 5);
  GsTgConfig config;
  config.threads = 1;

  const BatchRenderResult batch = render_batch(scene.cloud, cameras, config);
  ASSERT_EQ(batch.images.size(), cameras.size());

  RenderCounters merged;
  for (std::size_t i = 0; i < cameras.size(); ++i) {
    const RenderResult single = render_gstg(scene.cloud, cameras[i], config);
    EXPECT_TRUE(images_identical(single.image, batch.images[i])) << "view " << i;
    EXPECT_TRUE(counters_equal(single.counters, batch.counters[i])) << "view " << i;
    merged.merge(single.counters);
  }
  EXPECT_EQ(merged.sort_pairs, batch.total.sort_pairs);
  EXPECT_EQ(merged.blend_ops, batch.total.blend_ops);
}

TEST(RenderBatch, ViewParallelismDoesNotChangeOutput) {
  const Scene scene = generate_scene("truck", RunScale{8, 64});
  const auto cameras = orbit_cameras(scene, 6);
  GsTgConfig config;
  config.threads = 1;

  BatchOptions sequential;
  sequential.view_threads = 1;
  BatchOptions parallel;
  parallel.view_threads = 3;

  const BatchRenderResult a = render_batch(scene.cloud, cameras, config, sequential);
  const BatchRenderResult b = render_batch(scene.cloud, cameras, config, parallel);
  ASSERT_EQ(a.images.size(), b.images.size());
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    EXPECT_TRUE(images_identical(a.images[i], b.images[i])) << "view " << i;
    EXPECT_TRUE(counters_equal(a.counters[i], b.counters[i])) << "view " << i;
  }
}

TEST(RenderBatch, EmptyCameraListIsFine) {
  const GaussianCloud cloud = make_random_cloud(50, 1);
  GsTgConfig config;
  const BatchRenderResult result = render_batch(cloud, {}, config);
  EXPECT_TRUE(result.images.empty());
  EXPECT_EQ(result.total.sort_pairs, 0u);
}

TEST(GroupSort, RadixMatchesComparisonOnScene) {
  // Whole-pipeline check: forcing either group-sort algorithm produces the
  // same image and the same sorted group lists, including depth ties.
  const GaussianCloud cloud = make_random_cloud(900, 17);
  const Camera camera = make_camera();

  GsTgConfig comparison;
  comparison.threads = 1;
  comparison.sort_algo = SortAlgo::kComparison;
  GsTgConfig radix = comparison;
  radix.sort_algo = SortAlgo::kRadix;

  const GsTgFrameData a = build_gstg_frame(cloud, camera, comparison);
  const GsTgFrameData b = build_gstg_frame(cloud, camera, radix);
  EXPECT_EQ(a.frame.group_bins.splat_ids, b.frame.group_bins.splat_ids);
  EXPECT_EQ(a.frame.masks, b.frame.masks);

  const RenderResult ra = render_gstg(cloud, camera, comparison);
  const RenderResult rb = render_gstg(cloud, camera, radix);
  EXPECT_TRUE(images_identical(ra.image, rb.image));
}

}  // namespace
}  // namespace gstg
