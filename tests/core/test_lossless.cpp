// The paper's central claim (sections I and IV-B): "GS-TG is a completely
// lossless technique". These tests assert *bit-exact* equality between the
// baseline per-tile pipeline and the GS-TG grouped pipeline across tile and
// group geometries and every boundary combination with the containment
// guarantee, on multiple scenes.
#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "../test_helpers.h"
#include "core/pipeline.h"
#include "render/pipeline.h"
#include "scene/scene.h"

namespace gstg {
namespace {

using testutil::make_camera;

struct LosslessCase {
  int tile = 16;
  int group = 64;
  Boundary group_boundary = Boundary::kEllipse;
  Boundary mask_boundary = Boundary::kEllipse;
};

std::string case_name(const ::testing::TestParamInfo<LosslessCase>& info) {
  const LosslessCase& c = info.param;
  return std::string(to_string(c.group_boundary)) + "_" + to_string(c.mask_boundary) + "_t" +
         std::to_string(c.tile) + "_g" + std::to_string(c.group);
}

class LosslessTest : public ::testing::TestWithParam<LosslessCase> {};

TEST_P(LosslessTest, GsTgImageIsBitExactVsBaseline) {
  const LosslessCase& c = GetParam();
  const Camera cam = make_camera(240, 176);
  const GaussianCloud cloud = testutil::make_random_cloud(1200, 91);

  RenderConfig baseline;
  baseline.tile_size = c.tile;
  baseline.boundary = c.mask_boundary;  // rasterization tile sets must match
  const RenderResult ref = render_baseline(cloud, cam, baseline);

  GsTgConfig config;
  config.tile_size = c.tile;
  config.group_size = c.group;
  config.group_boundary = c.group_boundary;
  config.mask_boundary = c.mask_boundary;
  ASSERT_TRUE(config.lossless_guaranteed());
  const RenderResult ours = render_gstg(cloud, cam, config);

  EXPECT_EQ(max_abs_diff(ref.image, ours.image), 0.0f);
  // Rasterization does exactly the same work (same filtered sequences).
  EXPECT_EQ(ref.counters.alpha_computations, ours.counters.alpha_computations);
  EXPECT_EQ(ref.counters.blend_ops, ours.counters.blend_ops);
  EXPECT_EQ(ref.counters.early_exit_pixels, ours.counters.early_exit_pixels);
  // ... while sorting no more (strictly less whenever groups really span
  // multiple tiles; equal in the degenerate group==tile configuration).
  EXPECT_LE(ours.counters.sort_pairs, ref.counters.sort_pairs);
  if (c.group > c.tile) {
    EXPECT_LT(ours.counters.sort_pairs, ref.counters.sort_pairs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BoundaryCombos, LosslessTest,
    ::testing::Values(
        LosslessCase{16, 64, Boundary::kAabb, Boundary::kAabb},
        LosslessCase{16, 64, Boundary::kAabb, Boundary::kObb},
        LosslessCase{16, 64, Boundary::kAabb, Boundary::kEllipse},
        LosslessCase{16, 64, Boundary::kObb, Boundary::kObb},
        LosslessCase{16, 64, Boundary::kObb, Boundary::kEllipse},
        LosslessCase{16, 64, Boundary::kEllipse, Boundary::kEllipse}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    TileGroupGeometries, LosslessTest,
    ::testing::Values(
        LosslessCase{8, 16, Boundary::kEllipse, Boundary::kEllipse},
        LosslessCase{8, 32, Boundary::kEllipse, Boundary::kEllipse},
        LosslessCase{8, 64, Boundary::kEllipse, Boundary::kEllipse},  // 64-bit mask
        LosslessCase{16, 32, Boundary::kEllipse, Boundary::kEllipse},
        LosslessCase{32, 64, Boundary::kAabb, Boundary::kAabb},
        LosslessCase{16, 16, Boundary::kEllipse, Boundary::kEllipse}),  // 1 tile/group
    case_name);

// Geometry x thread-count sweep: the paper's Fig. 11 tile/group combinations
// must stay bit-exact whether the grouped pipeline runs single-threaded or
// with a worker pool (the accelerator's parallel execution model).
struct SweepCase {
  int tile = 16;
  int group = 64;
  std::size_t threads = 1;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  // Built with appends: the operator+ chain trips GCC 12's -Wrestrict
  // false positive (PR 105329) at -O2.
  std::string name = "t";
  name += std::to_string(c.tile);
  name += "_g";
  name += std::to_string(c.group);
  name += "_threads";
  name += std::to_string(c.threads);
  return name;
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const auto& [tile, group] : {std::pair{8, 32}, {8, 64}, {16, 32}, {16, 64}}) {
    for (const std::size_t threads : {1, 4}) {
      cases.push_back(SweepCase{tile, group, threads});
    }
  }
  return cases;
}

class LosslessSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(LosslessSweepTest, BitExactAcrossGeometryAndThreads) {
  const SweepCase& c = GetParam();
  const Camera cam = make_camera(240, 176);
  const GaussianCloud cloud = testutil::make_random_cloud(1200, 91);

  RenderConfig baseline;
  baseline.tile_size = c.tile;
  baseline.boundary = Boundary::kEllipse;
  baseline.threads = 1;  // single-threaded oracle
  const RenderResult ref = render_baseline(cloud, cam, baseline);

  GsTgConfig config;
  config.tile_size = c.tile;
  config.group_size = c.group;
  config.threads = c.threads;
  ASSERT_TRUE(config.lossless_guaranteed());
  const RenderResult ours = render_gstg(cloud, cam, config);

  EXPECT_EQ(max_abs_diff(ref.image, ours.image), 0.0f);
  EXPECT_EQ(ref.counters.alpha_computations, ours.counters.alpha_computations);
  EXPECT_EQ(ref.counters.blend_ops, ours.counters.blend_ops);
  EXPECT_LT(ours.counters.sort_pairs, ref.counters.sort_pairs);
}

INSTANTIATE_TEST_SUITE_P(GeometryThreadSweep, LosslessSweepTest,
                         ::testing::ValuesIn(sweep_cases()), sweep_name);

class LosslessSceneTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LosslessSceneTest, BitExactOnSyntheticScenes) {
  const Scene scene = generate_scene(GetParam(), RunScale{8, 256});
  RenderConfig baseline;
  baseline.tile_size = 16;
  baseline.boundary = Boundary::kEllipse;
  const RenderResult ref = render_baseline(scene.cloud, scene.camera, baseline);

  GsTgConfig config;
  const RenderResult ours = render_gstg(scene.cloud, scene.camera, config);
  EXPECT_EQ(max_abs_diff(ref.image, ours.image), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Scenes, LosslessSceneTest,
                         ::testing::Values("train", "truck", "drjohnson", "playroom"));

TEST(Lossless, NonMultipleImageSizes) {
  // Edge tiles and edge groups (image not a multiple of tile or group).
  const Camera cam = make_camera(250, 187);
  const GaussianCloud cloud = testutil::make_random_cloud(900, 97);
  RenderConfig baseline;
  baseline.tile_size = 16;
  baseline.boundary = Boundary::kEllipse;
  const RenderResult ref = render_baseline(cloud, cam, baseline);
  GsTgConfig config;
  const RenderResult ours = render_gstg(cloud, cam, config);
  EXPECT_EQ(max_abs_diff(ref.image, ours.image), 0.0f);
}

TEST(Lossless, OpacityAwareRhoModeAlsoExact) {
  const Camera cam = make_camera(160, 120);
  const GaussianCloud cloud = testutil::make_random_cloud(700, 101);
  RenderConfig baseline;
  baseline.tile_size = 16;
  baseline.boundary = Boundary::kEllipse;
  baseline.opacity_aware_rho = true;
  const RenderResult ref = render_baseline(cloud, cam, baseline);
  GsTgConfig config;
  config.opacity_aware_rho = true;
  const RenderResult ours = render_gstg(cloud, cam, config);
  EXPECT_EQ(max_abs_diff(ref.image, ours.image), 0.0f);
}

TEST(Lossless, GsTgDeterministicAcrossThreads) {
  const Camera cam = make_camera(160, 120);
  const GaussianCloud cloud = testutil::make_random_cloud(600, 103);
  GsTgConfig one;
  one.threads = 1;
  GsTgConfig four;
  four.threads = 4;
  const RenderResult a = render_gstg(cloud, cam, one);
  const RenderResult b = render_gstg(cloud, cam, four);
  EXPECT_EQ(max_abs_diff(a.image, b.image), 0.0f);
  EXPECT_EQ(a.counters.alpha_computations, b.counters.alpha_computations);
  EXPECT_EQ(a.counters.bitmask_tests, b.counters.bitmask_tests);
}

TEST(Lossless, StageTimesAttributed) {
  const Camera cam = make_camera(160, 120);
  const GaussianCloud cloud = testutil::make_random_cloud(600, 107);
  const RenderResult r = render_gstg(cloud, cam, GsTgConfig{});
  EXPECT_GE(r.times.preprocess_ms, 0.0);
  EXPECT_GE(r.times.bitmask_ms, 0.0);
  EXPECT_GE(r.times.sort_ms, 0.0);
  EXPECT_GE(r.times.raster_ms, 0.0);
  EXPECT_GT(r.counters.bitmask_tests, 0u);
  EXPECT_GT(r.counters.filter_checks, 0u);
}

}  // namespace
}  // namespace gstg
