// Shared helpers for the dataset loader tests: little-endian byte builders
// for COLMAP binary payloads and a self-cleaning temp directory to lay
// model files into (read_colmap_scene ingests directories, not streams).
#pragma once

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

namespace gstg::testutil {

inline void append_bytes(std::string& out, const void* data, std::size_t bytes) {
  out.append(static_cast<const char*>(data), bytes);
}

inline void append_u8(std::string& out, std::uint8_t v) { append_bytes(out, &v, sizeof(v)); }
inline void append_u32(std::string& out, std::uint32_t v) { append_bytes(out, &v, sizeof(v)); }
inline void append_i32(std::string& out, std::int32_t v) { append_bytes(out, &v, sizeof(v)); }
inline void append_u64(std::string& out, std::uint64_t v) { append_bytes(out, &v, sizeof(v)); }
inline void append_f64(std::string& out, double v) { append_bytes(out, &v, sizeof(v)); }

/// Unique scratch directory under the system temp dir, removed on scope
/// exit. Each instance gets a fresh name so parallel ctest shards never
/// collide.
class TempDir {
 public:
  TempDir() {
    static std::atomic<std::uint64_t> counter{0};
    const auto id = counter.fetch_add(1);
    path_ = std::filesystem::temp_directory_path() /
            ("gstg_dataset_test_" + std::to_string(::getpid()) + "_" + std::to_string(id));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  void write_file(const std::string& name, const std::string& bytes) const {
    std::ofstream out(path_ / name, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot create " << (path_ / name);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

 private:
  std::filesystem::path path_;
};

}  // namespace gstg::testutil
