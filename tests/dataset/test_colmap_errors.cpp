// Malformed-COLMAP corpus, mirroring the hardened-PLY discipline
// (tests/gaussian/test_ply_errors.cpp): truncated binaries, garbled counts,
// overflowing size computations, non-finite poses, duplicate ids and absurd
// reservations must all raise typed DatasetErrors — never a silently empty
// scene, a crash, or a multi-terabyte allocation.
#include "dataset/colmap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "dataset/load_scene.h"
#include "dataset_test_util.h"

namespace gstg {
namespace {

using testutil::append_f64;
using testutil::append_i32;
using testutil::append_u32;
using testutil::append_u64;
using testutil::append_u8;
using testutil::TempDir;

// ---------------------------------------------------------------------------
// Parameterised builders for a small valid binary model; each test corrupts
// exactly one knob.

struct CameraSpec {
  std::uint32_t camera_id = 1;
  std::int32_t model_id = 1;  // PINHOLE
  std::uint64_t width = 640;
  std::uint64_t height = 480;
  double fx = 500.0, fy = 505.0, cx = 320.0, cy = 240.0;
};

std::string cameras_bin(const CameraSpec& a, const CameraSpec& b = {.camera_id = 2}) {
  std::string out;
  append_u64(out, 2);
  for (const CameraSpec& cam : {a, b}) {
    append_u32(out, cam.camera_id);
    append_i32(out, cam.model_id);
    append_u64(out, cam.width);
    append_u64(out, cam.height);
    for (const double p : {cam.fx, cam.fy, cam.cx, cam.cy}) append_f64(out, p);
  }
  return out;
}

struct ImageSpec {
  std::uint32_t image_id = 10;
  double qw = 1.0, qx = 0.0, qy = 0.0, qz = 0.0;
  double tx = 0.0, ty = 0.0, tz = 4.0;
  std::uint32_t camera_id = 1;
  std::string name = "frame.png";
  std::uint64_t num_points2d = 0;
};

std::string one_image(const ImageSpec& img) {
  std::string out;
  append_u32(out, img.image_id);
  for (const double v : {img.qw, img.qx, img.qy, img.qz}) append_f64(out, v);
  for (const double v : {img.tx, img.ty, img.tz}) append_f64(out, v);
  append_u32(out, img.camera_id);
  out += img.name;
  out.push_back('\0');
  append_u64(out, img.num_points2d);
  // Adversarial counts (the overflow-guard tests) get the count only; the
  // reader must die on the guard or the truncation check, so the builder
  // never materialises a huge payload.
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(img.num_points2d, 64); ++i) {
    append_f64(out, 1.0);
    append_f64(out, 2.0);
    append_u64(out, 0);
  }
  return out;
}

std::string images_bin(const ImageSpec& a, const ImageSpec& b = {.image_id = 11}) {
  std::string out;
  append_u64(out, 2);
  out += one_image(a);
  out += one_image(b);
  return out;
}

std::string points_bin(std::size_t count, double x0 = 0.0, std::uint64_t track_len = 1) {
  std::string out;
  append_u64(out, count);
  for (std::size_t i = 0; i < count; ++i) {
    append_u64(out, i + 1);
    append_f64(out, x0 + 0.25 * static_cast<double>(i));
    append_f64(out, 0.5);
    append_f64(out, 2.0);
    append_u8(out, 200);
    append_u8(out, 100);
    append_u8(out, 50);
    append_f64(out, 0.5);
    append_u64(out, track_len);
    for (std::uint64_t t = 0; t < track_len; ++t) {
      append_u32(out, 10);
      append_u32(out, static_cast<std::uint32_t>(t));
    }
  }
  return out;
}

/// Lays the three payloads into a fresh model dir and parses it.
LoadedScene parse_model(const std::string& cameras, const std::string& images,
                        const std::string& points) {
  TempDir dir;
  dir.write_file("cameras.bin", cameras);
  dir.write_file("images.bin", images);
  dir.write_file("points3D.bin", points);
  return read_colmap_scene(dir.path().string());
}

void expect_dataset_error(const std::string& cameras, const std::string& images,
                          const std::string& points, const std::string& message_fragment) {
  try {
    (void)parse_model(cameras, images, points);
    FAIL() << "expected DatasetError containing '" << message_fragment << "'";
  } catch (const DatasetError& e) {
    EXPECT_NE(std::string(e.what()).find(message_fragment), std::string::npos) << e.what();
  }
}

std::string truncate(std::string bytes, std::size_t drop) {
  EXPECT_LT(drop, bytes.size());
  bytes.resize(bytes.size() - drop);
  return bytes;
}

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------

TEST(ColmapErrors, ValidBinaryModelStillParses) {
  const LoadedScene scene = parse_model(cameras_bin({}), images_bin({}), points_bin(4));
  EXPECT_EQ(scene.cloud.size(), 4u);
  EXPECT_EQ(scene.cameras.size(), 2u);
  EXPECT_EQ(scene.source, "colmap-binary");
}

TEST(ColmapErrors, TruncatedCamerasBin) {
  expect_dataset_error(truncate(cameras_bin({}), 1), images_bin({}), points_bin(1),
                       "truncated camera");
  expect_dataset_error("", images_bin({}), points_bin(1), "truncated camera count");
}

TEST(ColmapErrors, HugeCameraCountWithTinyPayloadIsTruncationNotOom) {
  std::string cams;
  append_u64(cams, std::numeric_limits<std::uint64_t>::max());
  expect_dataset_error(cams, images_bin({}), points_bin(1), "truncated camera 0");
}

TEST(ColmapErrors, UnsupportedCameraModelId) {
  expect_dataset_error(cameras_bin({.model_id = 99}), images_bin({}), points_bin(1),
                       "unsupported camera model id 99");
}

TEST(ColmapErrors, DuplicateCameraId) {
  expect_dataset_error(cameras_bin({}, {.camera_id = 1}), images_bin({}), points_bin(1),
                       "duplicate camera id 1");
}

TEST(ColmapErrors, AbsurdImageSizeRejected) {
  expect_dataset_error(cameras_bin({.width = 0}), images_bin({}), points_bin(1),
                       "image size");
  expect_dataset_error(cameras_bin({.height = std::uint64_t{1} << 40}), images_bin({}),
                       points_bin(1), "image size");
}

TEST(ColmapErrors, NonFiniteIntrinsicsRejected) {
  expect_dataset_error(cameras_bin({.fx = kNan}), images_bin({}), points_bin(1),
                       "non-finite intrinsic");
  expect_dataset_error(cameras_bin({.fx = -500.0}), images_bin({}), points_bin(1),
                       "non-positive focal");
}

TEST(ColmapErrors, NonZeroDistortionRejected) {
  // SIMPLE_RADIAL with k != 0: we do not undistort, so this must be a typed
  // error rather than a silently wrong projection.
  std::string cams;
  append_u64(cams, 1);
  append_u32(cams, 1);
  append_i32(cams, 2);  // SIMPLE_RADIAL
  append_u64(cams, 640);
  append_u64(cams, 480);
  for (const double p : {500.0, 320.0, 240.0, 0.1}) append_f64(cams, p);
  expect_dataset_error(cams, images_bin({}), points_bin(1), "non-zero distortion");
}

TEST(ColmapErrors, TruncatedImagesBin) {
  expect_dataset_error(cameras_bin({}), truncate(images_bin({}), 3), points_bin(1),
                       "truncated image");
  expect_dataset_error(cameras_bin({}), "", points_bin(1), "truncated image count");
}

TEST(ColmapErrors, UnterminatedImageNameIsTruncation) {
  // Cut inside the trailing image's name: the null terminator never arrives.
  std::string imgs;
  append_u64(imgs, 1);
  std::string body = one_image({});
  body.resize(body.find("frame.png") + 3);
  imgs += body;
  expect_dataset_error(cameras_bin({}), imgs, points_bin(1), "unterminated image name");
}

TEST(ColmapErrors, NonFinitePoseRejected) {
  expect_dataset_error(cameras_bin({}), images_bin({.qw = kNan}), points_bin(1),
                       "non-finite rotation quaternion");
  expect_dataset_error(cameras_bin({}),
                       images_bin({.qw = 0.0, .qx = 0.0, .qy = 0.0, .qz = 0.0}), points_bin(1),
                       "zero-norm rotation quaternion");
  expect_dataset_error(cameras_bin({}), images_bin({.tz = kNan}), points_bin(1),
                       "non-finite translation");
}

TEST(ColmapErrors, DuplicateImageId) {
  expect_dataset_error(cameras_bin({}), images_bin({}, {.image_id = 10}), points_bin(1),
                       "duplicate image id 10");
}

TEST(ColmapErrors, UnknownCameraReference) {
  expect_dataset_error(cameras_bin({}), images_bin({.camera_id = 77}), points_bin(1),
                       "unknown camera id 77");
}

TEST(ColmapErrors, Point2dCountOverflowGuarded) {
  // count * 24 bytes overflows std::size_t: the guard must fire before any
  // allocation or read.
  expect_dataset_error(cameras_bin({}),
                       images_bin({.num_points2d = std::numeric_limits<std::uint64_t>::max()}),
                       points_bin(1), "overflows the payload size");
}

TEST(ColmapErrors, HugePoint2dCountWithTinyPayloadIsTruncationNotOom) {
  // Large but non-overflowing count, no payload behind it: dies on the
  // bounded-chunk read, not on a giant reservation.
  std::string imgs;
  append_u64(imgs, 1);
  std::string body = one_image({});
  body.resize(body.size() - sizeof(std::uint64_t));
  append_u64(body, std::uint64_t{1} << 40);
  imgs += body;
  expect_dataset_error(cameras_bin({}), imgs, points_bin(1), "short point2D payload");
}

TEST(ColmapErrors, TruncatedPointsBin) {
  expect_dataset_error(cameras_bin({}), images_bin({}), truncate(points_bin(4), 2),
                       "truncated point");
  expect_dataset_error(cameras_bin({}), images_bin({}), "", "truncated point count");
}

TEST(ColmapErrors, NonFinitePointPositionRejected) {
  expect_dataset_error(cameras_bin({}), images_bin({}), points_bin(2, kNan),
                       "non-finite position");
}

TEST(ColmapErrors, TrackLengthOverflowGuarded) {
  std::string pts = points_bin(1, 0.0, 0);
  pts.resize(pts.size() - sizeof(std::uint64_t));  // drop the track_len field
  append_u64(pts, std::numeric_limits<std::uint64_t>::max());
  expect_dataset_error(cameras_bin({}), images_bin({}), pts, "overflows the payload size");
}

TEST(ColmapErrors, HugeTrackLengthWithTinyPayloadIsTruncationNotOom) {
  std::string body = points_bin(1, 0.0, 0);
  body.resize(body.size() - sizeof(std::uint64_t));
  append_u64(body, std::uint64_t{1} << 40);
  expect_dataset_error(cameras_bin({}), images_bin({}), body, "short track payload");
}

TEST(ColmapErrors, MissingModelFiles) {
  TempDir dir;
  dir.write_file("cameras.bin", cameras_bin({}));
  try {
    (void)read_colmap_scene(dir.path().string());
    FAIL() << "expected DatasetError";
  } catch (const DatasetError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------------------
// Text serialisation corpus.

constexpr char kCamerasTxt[] = "# comment\n1 PINHOLE 640 480 500.0 505.0 320.0 240.0\n";
constexpr char kImagesTxt[] =
    "10 1.0 0.0 0.0 0.0 0.0 0.0 4.0 1 frame.png\n1.0 2.0 -1\n";
constexpr char kPointsTxt[] = "1 0.0 0.5 2.0 200 100 50 0.5 10 0\n";

LoadedScene parse_text_model(const std::string& cameras, const std::string& images,
                             const std::string& points) {
  TempDir dir;
  dir.write_file("cameras.txt", cameras);
  dir.write_file("images.txt", images);
  dir.write_file("points3D.txt", points);
  return read_colmap_scene(dir.path().string());
}

void expect_text_error(const std::string& cameras, const std::string& images,
                       const std::string& points, const std::string& message_fragment) {
  try {
    (void)parse_text_model(cameras, images, points);
    FAIL() << "expected DatasetError containing '" << message_fragment << "'";
  } catch (const DatasetError& e) {
    EXPECT_NE(std::string(e.what()).find(message_fragment), std::string::npos) << e.what();
  }
}

TEST(ColmapErrors, ValidTextModelStillParses) {
  const LoadedScene scene = parse_text_model(kCamerasTxt, kImagesTxt, kPointsTxt);
  EXPECT_EQ(scene.cloud.size(), 1u);
  EXPECT_EQ(scene.cameras.size(), 1u);
  EXPECT_EQ(scene.source, "colmap-text");
}

TEST(ColmapErrors, GarbledTextCountsAreErrorsNotTruncations) {
  expect_text_error("1 PINHOLE abc 480 500.0 505.0 320.0 240.0\n", kImagesTxt, kPointsTxt,
                    "garbled count 'abc'");
  // Partial parses must not silently truncate to the leading digits.
  expect_text_error("1 PINHOLE 640x12 480 500.0 505.0 320.0 240.0\n", kImagesTxt, kPointsTxt,
                    "garbled count '640x12'");
  expect_text_error("-1 PINHOLE 640 480 500.0 505.0 320.0 240.0\n", kImagesTxt, kPointsTxt,
                    "garbled count '-1'");
}

TEST(ColmapErrors, UnsupportedTextModelName) {
  expect_text_error("1 FISHEYE 640 480 500.0 320.0 240.0\n", kImagesTxt, kPointsTxt,
                    "unsupported camera model 'FISHEYE'");
}

TEST(ColmapErrors, TextImageLineShapeEnforced) {
  expect_text_error(kCamerasTxt, "10 1.0 0.0 0.0 0.0 0.0 0.0 4.0 1\n\n", kPointsTxt,
                    "expected IMAGE_ID");
  expect_text_error(kCamerasTxt, "10 1.0 0.0 0.0 0.0 0.0 0.0 4.0 1 frame.png\n", kPointsTxt,
                    "missing points2D line");
  expect_text_error(kCamerasTxt,
                    "10 1.0 0.0 0.0 0.0 0.0 0.0 4.0 1 frame.png\n1.0 2.0\n", kPointsTxt,
                    "not a multiple of 3");
  expect_text_error(kCamerasTxt,
                    "10 1.0 x 0.0 0.0 0.0 0.0 4.0 1 frame.png\n\n", kPointsTxt,
                    "garbled number 'x'");
}

TEST(ColmapErrors, TextPointLineShapeEnforced) {
  expect_text_error(kCamerasTxt, kImagesTxt, "1 0.0 0.5\n", "expected POINT3D_ID");
  expect_text_error(kCamerasTxt, kImagesTxt, "1 0.0 0.5 2.0 200 100 50 0.5 10\n",
                    "expected POINT3D_ID");
  expect_text_error(kCamerasTxt, kImagesTxt, "1 0.0 nope 2.0 200 100 50 0.5\n",
                    "garbled number 'nope'");
  expect_text_error(kCamerasTxt, kImagesTxt, "1 0.0 0.5 2.0 300 100 50 0.5\n", "> 255");
}

TEST(ColmapErrors, EmptyTextModelIsAValidEmptyScene) {
  // Comment-only files are a well-formed zero-entity model, not an error
  // (matching the zero-vertex PLY case).
  const LoadedScene scene = parse_text_model("# empty\n", "# empty\n", "# empty\n");
  EXPECT_EQ(scene.cloud.size(), 0u);
  EXPECT_EQ(scene.cameras.size(), 0u);
}

TEST(ColmapErrors, DatasetErrorIsARuntimeError) {
  // Existing catch (std::runtime_error) sites must keep working.
  EXPECT_THROW((void)read_colmap_scene("/nonexistent/model"), std::runtime_error);
}

TEST(ColmapErrors, LoadSceneSniffingErrors) {
  EXPECT_THROW((void)load_scene("/nonexistent/path"), DatasetError);
  TempDir empty;
  try {
    (void)load_scene(empty.path().string());
    FAIL() << "expected DatasetError";
  } catch (const DatasetError& e) {
    EXPECT_NE(std::string(e.what()).find("no transforms.json and no COLMAP model"),
              std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(is_dataset_path(empty.path().string()));
  EXPECT_FALSE(is_dataset_path("/nonexistent/path"));
}

}  // namespace
}  // namespace gstg
