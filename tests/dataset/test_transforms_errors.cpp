// Malformed-transforms.json corpus: broken JSON, missing or mistyped keys,
// non-finite values, malformed transform matrices and absurd sizes must all
// raise typed DatasetErrors — never a silently empty or wrong scene.
#include "dataset/transforms.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace gstg {
namespace {

/// A valid document to corrupt.
std::string valid_json() {
  return R"({
  "camera_angle_x": 0.6911112070083618,
  "w": 400,
  "h": 300,
  "frames": [
    {
      "file_path": "./train/r_0",
      "transform_matrix": [
        [1.0, 0.0, 0.0, 0.0],
        [0.0, 1.0, 0.0, 0.0],
        [0.0, 0.0, 1.0, 4.0],
        [0.0, 0.0, 0.0, 1.0]
      ]
    }
  ]
})";
}

LoadedScene parse(const std::string& text, const TransformsOptions& options = {}) {
  std::istringstream in(text);
  return read_transforms_scene(in, options);
}

std::string replace_once(std::string text, const std::string& from, const std::string& to) {
  const auto pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "corpus construction: '" << from << "' not found";
  return text.replace(pos, from.size(), to);
}

void expect_transforms_error(const std::string& text, const std::string& message_fragment) {
  try {
    (void)parse(text);
    FAIL() << "expected DatasetError containing '" << message_fragment << "'";
  } catch (const DatasetError& e) {
    EXPECT_NE(std::string(e.what()).find(message_fragment), std::string::npos) << e.what();
  }
}

TEST(TransformsErrors, ValidDocumentStillParses) {
  const LoadedScene scene = parse(valid_json());
  EXPECT_EQ(scene.cameras.size(), 1u);
  EXPECT_EQ(scene.source, "transforms");
  EXPECT_GT(scene.cloud.size(), 0u);
}

TEST(TransformsErrors, BrokenJsonRejected) {
  expect_transforms_error("", "empty file");
  expect_transforms_error("{", "unexpected end of input");
  expect_transforms_error("{\"a\": }", "unexpected character");
  expect_transforms_error("{\"a\": 1} trailing", "trailing content");
  expect_transforms_error("{\"a\": \"unterminated}", "unterminated string");
  expect_transforms_error("{\"a\": trueish}", "expected '}'");
  expect_transforms_error("[1, 2, 3]", "root is not an object");
  expect_transforms_error("{\"a\": 1, \"a\": 2}", "duplicate object key");
  expect_transforms_error("{\"a\": \"bad \\x escape\"}", "unknown escape");
  expect_transforms_error("{\"a\": \"bad \\uZZZZ\"}", "garbled \\u escape");
}

TEST(TransformsErrors, DeepNestingBounded) {
  // Adversarial nesting must hit the typed depth bound, not the stack.
  std::string bomb = "{\"frames\": ";
  for (int i = 0; i < 200; ++i) bomb += "[";
  for (int i = 0; i < 200; ++i) bomb += "]";
  bomb += "}";
  expect_transforms_error(bomb, "nesting deeper than");
}

TEST(TransformsErrors, MissingOrMistypedKeys) {
  expect_transforms_error(replace_once(valid_json(), "camera_angle_x", "camera_angle_y"),
                          "missing key 'camera_angle_x'");
  expect_transforms_error(
      replace_once(valid_json(), "0.6911112070083618", "\"wide\""),
      "'camera_angle_x' is not a number");
  expect_transforms_error(replace_once(valid_json(), "\"frames\"", "\"nofames\""),
                          "missing frames array");
  expect_transforms_error(replace_once(valid_json(), "\"transform_matrix\"", "\"matrix\""),
                          "missing transform_matrix");
}

TEST(TransformsErrors, AbsurdValuesRejected) {
  expect_transforms_error(replace_once(valid_json(), "0.6911112070083618", "0.0"),
                          "outside (0, pi)");
  expect_transforms_error(replace_once(valid_json(), "0.6911112070083618", "4.0"),
                          "outside (0, pi)");
  expect_transforms_error(replace_once(valid_json(), "\"w\": 400", "\"w\": 0"),
                          "image size out of range");
  expect_transforms_error(replace_once(valid_json(), "\"w\": 400", "\"w\": 1e30"),
                          "image size out of range");
}

TEST(TransformsErrors, EmptyFramesRejected) {
  // A transforms file with no frames is a scene with no cameras — an error,
  // not a silently empty success.
  std::string text = valid_json();
  const auto open = text.find("\"frames\": [");
  const auto close = text.rfind(']');
  text = text.substr(0, open) + "\"frames\": []" + text.substr(close + 1);
  expect_transforms_error(text, "frames array is empty");
}

TEST(TransformsErrors, MalformedTransformMatrixRejected) {
  expect_transforms_error(replace_once(valid_json(), "[0.0, 0.0, 0.0, 1.0]", "[0.0, 0.0, 0.0]"),
                          "not 4 wide");
  expect_transforms_error(
      replace_once(valid_json(), "[0.0, 0.0, 0.0, 1.0]\n      ]", "[0.0, 0.0, 0.0, 1.0],\n"
                                 "        [0.0, 0.0, 0.0, 1.0]\n      ]"),
      "rows (want 4)");
  expect_transforms_error(replace_once(valid_json(), "[0.0, 0.0, 0.0, 1.0]", "[0.0, 0.0, 0.5, 1.0]"),
                          "last row is not (0, 0, 0, 1)");
  // A sheared rotation block would make rigid_inverse silently wrong.
  expect_transforms_error(replace_once(valid_json(), "[1.0, 0.0, 0.0, 0.0],", "[1.0, 0.9, 0.0, 0.0],"),
                          "not orthonormal");
}

TEST(TransformsErrors, NonFiniteMatrixEntryRejected) {
  // JSON has no Infinity literal, but a huge exponent overflows strtod to
  // inf — that must still be caught by the finiteness check.
  expect_transforms_error(replace_once(valid_json(), "[0.0, 0.0, 1.0, 4.0]", "[0.0, 0.0, 1.0, 1e999]"),
                          "not a finite number");
}

TEST(TransformsErrors, FilePathMustBeAString) {
  expect_transforms_error(replace_once(valid_json(), "\"./train/r_0\"", "12"),
                          "file_path is not a string");
}

TEST(TransformsErrors, ExplicitIntrinsicsPath) {
  // fl_x takes priority over camera_angle_x and must be validated too.
  const LoadedScene scene =
      parse(replace_once(valid_json(), "\"camera_angle_x\"", "\"fl_x\": 222.5, \"camera_angle_x\""));
  EXPECT_FLOAT_EQ(scene.cameras.at(0).fx(), 222.5f);
  expect_transforms_error(
      replace_once(valid_json(), "\"camera_angle_x\"", "\"fl_x\": -1.0, \"camera_angle_x\""),
      "non-positive focal length");
}

TEST(TransformsErrors, DatasetErrorIsARuntimeError) {
  EXPECT_THROW((void)parse("{"), std::runtime_error);
  EXPECT_THROW((void)read_transforms_scene_file("/nonexistent/transforms.json"), DatasetError);
}

}  // namespace
}  // namespace gstg
