// Camera-path interpolation: endpoint exactness, determinism across
// RunScale, slerp normalization/shortest-arc behaviour, and the generator
// contracts the flythrough workloads rely on.
#include "temporal/camera_path.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/quaternion.h"
#include "scene/scene.h"

namespace gstg {
namespace {

bool quat_bits_equal(Quat a, Quat b) {
  return a.w == b.w && a.x == b.x && a.y == b.y && a.z == b.z;
}

bool vec_bits_equal(Vec3 a, Vec3 b) { return a.x == b.x && a.y == b.y && a.z == b.z; }

bool pose_bits_equal(const CameraKeyframe& a, const CameraKeyframe& b) {
  return vec_bits_equal(a.eye, b.eye) && quat_bits_equal(a.orientation, b.orientation);
}

float max_mat_diff(const Mat4& a, const Mat4& b) {
  float max_diff = 0.0f;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      max_diff = std::max(max_diff, std::fabs(a.m[i][j] - b.m[i][j]));
    }
  }
  return max_diff;
}

CameraPath two_key_path() {
  return CameraPath("test", {128, 96, 1.2f},
                    {keyframe_look_at({5.0f, 2.0f, 5.0f}, {0.0f, 1.0f, 0.0f}),
                     keyframe_look_at({-4.0f, 3.0f, 6.0f}, {0.0f, 1.0f, 0.0f})});
}

TEST(CameraPath, EndpointsAreExact) {
  const CameraPath path = two_key_path();
  EXPECT_TRUE(pose_bits_equal(path.pose(0.0f), path.keyframe(0)));
  EXPECT_TRUE(pose_bits_equal(path.pose(1.0f), path.keyframe(1)));
  // Out-of-range parameters clamp to the endpoints.
  EXPECT_TRUE(pose_bits_equal(path.pose(-0.5f), path.keyframe(0)));
  EXPECT_TRUE(pose_bits_equal(path.pose(2.0f), path.keyframe(1)));
}

TEST(CameraPath, InteriorKeyframesAreExactAtTheirParameter) {
  std::vector<CameraKeyframe> keys;
  for (int k = 0; k < 5; ++k) {
    keys.push_back(keyframe_look_at({static_cast<float>(k), 2.0f, 5.0f}, {0.0f, 0.0f, 0.0f}));
  }
  const CameraPath path("test", {128, 96, 1.2f}, keys);
  for (int k = 0; k < 5; ++k) {
    const float t = static_cast<float>(k) / 4.0f;
    EXPECT_TRUE(pose_bits_equal(path.pose(t), path.keyframe(static_cast<std::size_t>(k))))
        << "keyframe " << k;
  }
}

TEST(CameraPath, FramesSampleEndpointsExactly) {
  const CameraPath path = two_key_path();
  const FrameSequence sequence = path.frames(7);
  ASSERT_EQ(sequence.frame_count(), 7u);
  const Camera first = keyframe_camera(path.keyframe(0), path.intrinsics());
  const Camera last = keyframe_camera(path.keyframe(1), path.intrinsics());
  EXPECT_EQ(max_mat_diff(sequence.cameras.front().world_to_camera(), first.world_to_camera()),
            0.0f);
  EXPECT_EQ(max_mat_diff(sequence.cameras.back().world_to_camera(), last.world_to_camera()),
            0.0f);
}

TEST(CameraPath, InvalidInputsThrow) {
  EXPECT_THROW(CameraPath("empty", {128, 96, 1.2f}, {}), std::invalid_argument);
  EXPECT_THROW(CameraPath("bad-size", {0, 96, 1.2f}, {CameraKeyframe{}}),
               std::invalid_argument);
  EXPECT_THROW(two_key_path().frames(0), std::invalid_argument);
  EXPECT_THROW(CameraPath::orbit("orbit", {128, 96, 1.2f}, {}, {1.0f, 0.0f, 0.0f}, 1.0f, 1),
               std::invalid_argument);
}

TEST(CameraPath, SingleFrameSamplesTheStart) {
  const CameraPath path = two_key_path();
  const FrameSequence sequence = path.frames(1);
  ASSERT_EQ(sequence.frame_count(), 1u);
  const Camera first = keyframe_camera(path.keyframe(0), path.intrinsics());
  EXPECT_EQ(max_mat_diff(sequence.cameras.front().world_to_camera(), first.world_to_camera()),
            0.0f);
}

TEST(CameraPath, TourFramesHoldAtKeyframesAndMoveBetween) {
  const CameraPath path = two_key_path();
  const FrameSequence tour = tour_frames(path, 3, 2);
  // 2 keyframes x 2 hold + 1 leg x 3 move.
  ASSERT_EQ(tour.frame_count(), 7u);
  // Hold frames repeat the exact keyframe camera.
  EXPECT_EQ(max_mat_diff(tour.cameras[0].world_to_camera(), tour.cameras[1].world_to_camera()),
            0.0f);
  EXPECT_EQ(max_mat_diff(tour.cameras[5].world_to_camera(), tour.cameras[6].world_to_camera()),
            0.0f);
  const Camera first = keyframe_camera(path.keyframe(0), path.intrinsics());
  EXPECT_EQ(max_mat_diff(tour.cameras[0].world_to_camera(), first.world_to_camera()), 0.0f);
  // Move frames differ from the holds around them.
  EXPECT_GT(max_mat_diff(tour.cameras[2].world_to_camera(), tour.cameras[1].world_to_camera()),
            0.0f);
  EXPECT_THROW(tour_frames(path, 1, 0), std::invalid_argument);
  EXPECT_THROW(tour_frames(path, -1, 1), std::invalid_argument);
}

TEST(CameraPath, PosesAreRunScaleInvariant) {
  // The same scene at two scales: intrinsics shrink with resolution, but
  // the keyframe poses and every sampled pose must be bit-identical.
  const Scene coarse = generate_scene("train", RunScale{8, 64});
  const Scene fine = generate_scene("train", RunScale{4, 16});
  const CameraPath a = orbit_path(coarse, 1.0f, 12);
  const CameraPath b = orbit_path(fine, 1.0f, 12);
  ASSERT_EQ(a.keyframe_count(), b.keyframe_count());
  for (std::size_t k = 0; k < a.keyframe_count(); ++k) {
    EXPECT_TRUE(pose_bits_equal(a.keyframe(k), b.keyframe(k))) << "keyframe " << k;
  }
  for (const float t : {0.0f, 0.13f, 0.5f, 0.77f, 1.0f}) {
    EXPECT_TRUE(pose_bits_equal(a.pose(t), b.pose(t))) << "t=" << t;
  }
  const CameraPath fa = flythrough_path(coarse);
  const CameraPath fb = flythrough_path(fine);
  ASSERT_EQ(fa.keyframe_count(), fb.keyframe_count());
  for (std::size_t k = 0; k < fa.keyframe_count(); ++k) {
    EXPECT_TRUE(pose_bits_equal(fa.keyframe(k), fb.keyframe(k))) << "keyframe " << k;
  }
}

TEST(CameraPath, GeneratorsLookAtTheFocus) {
  const Scene scene = generate_scene("playroom", RunScale{8, 64});
  for (const CameraPath& path : {orbit_path(scene, 1.0f, 8), flythrough_path(scene)}) {
    const FrameSequence sequence = path.frames(5);
    for (std::size_t f = 0; f < sequence.frame_count(); ++f) {
      const Vec3 view = sequence.cameras[f].to_view(scene.focus);
      // The focus sits in front of the camera, close to the optical axis.
      EXPECT_GT(view.z, 0.0f) << path.name() << " frame " << f;
      EXPECT_LT(std::fabs(view.x), 0.05f * view.z) << path.name() << " frame " << f;
      EXPECT_LT(std::fabs(view.y), 0.05f * view.z) << path.name() << " frame " << f;
    }
  }
}

TEST(Slerp, EndpointsExactAndUnitLength) {
  const Quat a = normalized(Quat{0.9f, 0.1f, -0.3f, 0.2f});
  const Quat b = normalized(Quat{-0.2f, 0.8f, 0.4f, -0.1f});
  EXPECT_TRUE(quat_bits_equal(slerp(a, b, 0.0f), a));
  EXPECT_TRUE(quat_bits_equal(slerp(a, b, 1.0f), b));
  for (const float t : {0.1f, 0.25f, 0.5f, 0.75f, 0.9f}) {
    EXPECT_NEAR(length(slerp(a, b, t)), 1.0f, 1e-5f) << "t=" << t;
  }
}

TEST(Slerp, ShortestArcIgnoresQuaternionSign) {
  // q and -q are the same rotation; slerp must interpolate through the
  // short way regardless of representation sign.
  const Quat a = from_axis_angle({0.0f, 1.0f, 0.0f}, 0.2f);
  const Quat b = from_axis_angle({0.0f, 1.0f, 0.0f}, 0.6f);
  const Quat nb{-b.w, -b.x, -b.y, -b.z};
  const Quat mid = slerp(a, b, 0.5f);
  const Quat mid_neg = slerp(a, nb, 0.5f);
  const Mat3 ra = rotation_matrix(mid);
  const Mat3 rb = rotation_matrix(mid_neg);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(ra.m[i][j], rb.m[i][j], 1e-5f);
    }
  }
  // And the midpoint is the 0.4-radian rotation.
  const Quat expected = from_axis_angle({0.0f, 1.0f, 0.0f}, 0.4f);
  EXPECT_NEAR(std::fabs(dot(mid, expected)), 1.0f, 1e-5f);
}

TEST(Slerp, NearlyParallelFallsBackToLerp) {
  const Quat a = normalized(Quat{1.0f, 0.01f, 0.0f, 0.0f});
  const Quat b = normalized(Quat{1.0f, 0.011f, 0.0f, 0.0f});
  const Quat mid = slerp(a, b, 0.5f);
  EXPECT_NEAR(length(mid), 1.0f, 1e-6f);
  EXPECT_GT(dot(mid, a), 0.999f);
}

TEST(KeyframeCamera, RoundTripsTheLookAtPose) {
  const Vec3 eye{7.0f, 3.0f, -2.0f};
  const Vec3 target{0.5f, 1.0f, 0.5f};
  const Camera direct = Camera::from_fov(160, 120, 1.2f, look_at(eye, target));
  const Camera via_key = keyframe_camera(keyframe_look_at(eye, target), {160, 120, 1.2f});
  EXPECT_LT(max_mat_diff(direct.world_to_camera(), via_key.world_to_camera()), 1e-5f);
  const Vec3 p = via_key.position();
  EXPECT_NEAR(p.x, eye.x, 1e-4f);
  EXPECT_NEAR(p.y, eye.y, 1e-4f);
  EXPECT_NEAR(p.z, eye.z, 1e-4f);
}

}  // namespace
}  // namespace gstg
