// Temporal renderer: cross-frame group-sort reuse is pixel-exact (kVerify
// proves every reused order bit-identical to a fresh sort on the flythrough
// scenes), the cache evicts on membership/grid/cloud changes, and the
// steady state allocates nothing.
#include "temporal/temporal_renderer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/pipeline.h"
#include "scene/scene.h"
#include "temporal/camera_path.h"
#include "test_helpers.h"

// --- Global allocation counter -------------------------------------------
// Same construction as tests/core/test_renderer.cpp: count every operator
// new in the binary so the steady-state test can assert a zero delta.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gstg {
namespace {

using testutil::make_camera;
using testutil::make_random_cloud;

bool images_identical(const Framebuffer& a, const Framebuffer& b) {
  return a.width() == b.width() && a.height() == b.height() && max_abs_diff(a, b) == 0.0f;
}

bool counters_equal(const RenderCounters& a, const RenderCounters& b) {
  return a.visible_gaussians == b.visible_gaussians && a.tile_pairs == b.tile_pairs &&
         a.sort_pairs == b.sort_pairs && a.bitmask_tests == b.bitmask_tests &&
         a.filter_checks == b.filter_checks && a.alpha_computations == b.alpha_computations &&
         a.blend_ops == b.blend_ops && a.total_pixels == b.total_pixels;
}

GsTgConfig temporal_config(TemporalMode mode, std::size_t threads = 1) {
  GsTgConfig config;
  config.temporal = mode;
  config.threads = threads;
  return config;
}

TEST(TemporalRenderer, StaticCameraReusesEveryGroup) {
  const GaussianCloud cloud = make_random_cloud(800, 11);
  const Camera camera = make_camera(192, 128);
  TemporalRenderer renderer(temporal_config(TemporalMode::kReuse));

  const RenderResult reference = render_gstg(cloud, camera, temporal_config(TemporalMode::kOff));

  FrameContext ctx;
  renderer.render(cloud, camera, ctx);  // cold frame: everything sorts
  EXPECT_EQ(renderer.last_frame().groups_reused, 0u);
  EXPECT_GT(renderer.last_frame().groups_resorted, 0u);
  EXPECT_TRUE(images_identical(reference.image, ctx.image));

  for (int frame = 1; frame < 4; ++frame) {
    renderer.render(cloud, camera, ctx);
    const TemporalStats& stats = renderer.last_frame();
    // An identical camera keeps every membership and every depth order.
    EXPECT_EQ(stats.groups_resorted, 0u) << "frame " << frame;
    EXPECT_EQ(stats.groups_evicted, 0u) << "frame " << frame;
    EXPECT_GT(stats.groups_reused, 0u) << "frame " << frame;
    EXPECT_DOUBLE_EQ(stats.reuse_rate(), 1.0) << "frame " << frame;
    EXPECT_TRUE(images_identical(reference.image, ctx.image)) << "frame " << frame;
    EXPECT_TRUE(counters_equal(reference.counters, ctx.counters)) << "frame " << frame;
  }
  EXPECT_EQ(renderer.total().frames, 4u);
}

TEST(TemporalRenderer, VerifyModeProvesReuseOnFlythroughScenes) {
  // The lossless-invariant acceptance check: along the flythrough and orbit
  // paths of the algorithm scenes, every reused group order must re-sort to
  // the bit-identical list, and frames must match the one-shot renderer
  // exactly (images AND counters — kVerify sorts everything, so even
  // sort_comparison_volume agrees).
  for (const char* name : {"train", "playroom"}) {
    const Scene scene = generate_scene(name, RunScale{8, 64});
    for (const CameraPath& path : {orbit_path(scene, 0.05f, 4), flythrough_path(scene)}) {
      const FrameSequence sequence = path.frames(4);
      const GsTgConfig config = temporal_config(TemporalMode::kVerify);
      const TemporalSequenceResult result = render_sequence(scene.cloud, sequence, config);

      EXPECT_EQ(result.total_stats.verify_mismatches, 0u) << path.name();
      for (std::size_t f = 0; f < sequence.frame_count(); ++f) {
        const RenderResult oneshot =
            render_gstg(scene.cloud, sequence.cameras[f], temporal_config(TemporalMode::kOff));
        EXPECT_TRUE(images_identical(oneshot.image, result.images[f]))
            << path.name() << " frame " << f;
        EXPECT_TRUE(counters_equal(oneshot.counters, result.counters[f]))
            << path.name() << " frame " << f;
        EXPECT_DOUBLE_EQ(oneshot.counters.sort_comparison_volume,
                         result.counters[f].sort_comparison_volume)
            << path.name() << " frame " << f;
      }
    }
  }
}

TEST(TemporalRenderer, ReuseModeIsPixelExactAndAvoidsSortWork) {
  // Tour sampling: hold frames at each keyframe are where cross-frame
  // reuse pays (continuous motion scrambles the near-equal depths of
  // planar surfaces, so move frames mostly re-sort — by design).
  const Scene scene = generate_scene("train", RunScale{8, 64});
  const FrameSequence sequence = tour_frames(flythrough_path(scene), 1, 2);
  const GsTgConfig config = temporal_config(TemporalMode::kReuse);
  const TemporalSequenceResult result = render_sequence(scene.cloud, sequence, config);

  EXPECT_GT(result.total_stats.groups_reused, 0u);
  EXPECT_GT(result.total_stats.sorts_avoided_ratio(), 0.0);
  for (std::size_t f = 0; f < sequence.frame_count(); ++f) {
    const RenderResult oneshot =
        render_gstg(scene.cloud, sequence.cameras[f], temporal_config(TemporalMode::kOff));
    // Pixel-exact with identical work counters; only the sorting-work proxy
    // shrinks (reused groups skip their sort).
    EXPECT_TRUE(images_identical(oneshot.image, result.images[f])) << "frame " << f;
    EXPECT_TRUE(counters_equal(oneshot.counters, result.counters[f])) << "frame " << f;
    if (result.frame_stats[f].groups_reused > 0 &&
        result.frame_stats[f].groups_resorted == 0 &&
        result.frame_stats[f].groups_patched == 0) {
      EXPECT_LT(result.counters[f].sort_comparison_volume,
                oneshot.counters.sort_comparison_volume)
          << "frame " << f;
    }
  }
}

TEST(TemporalRenderer, BoundaryCrossersArePatchedNotResorted) {
  // A purely lateral camera translation keeps every view-space depth
  // bit-identical (the translation is orthogonal to the forward axis), so
  // stayer orders hold; splats whose footprint crosses a group boundary
  // join/leave groups. Those groups must take the patch path — cached
  // stayer order + sorted joiners merged in — and stay pixel-exact.
  const GaussianCloud cloud = make_random_cloud(900, 41);
  const Camera a = Camera::from_fov(256, 192, 1.2f,
                                    look_at({0.0f, 0.0f, -5.0f}, {0.0f, 0.0f, 0.0f}));
  const Camera b = Camera::from_fov(256, 192, 1.2f,
                                    look_at({0.4f, 0.0f, -5.0f}, {0.4f, 0.0f, 0.0f}));

  TemporalRenderer renderer(temporal_config(TemporalMode::kReuse));
  FrameContext ctx;
  renderer.render(cloud, a, ctx);
  renderer.render(cloud, b, ctx);
  const TemporalStats& stats = renderer.last_frame();
  EXPECT_GT(stats.groups_patched, 0u);
  EXPECT_GT(stats.groups_evicted, 0u);  // membership churned
  EXPECT_GT(stats.pairs_reused, 0u);

  const RenderResult reference = render_gstg(cloud, b, temporal_config(TemporalMode::kOff));
  EXPECT_TRUE(images_identical(reference.image, ctx.image));
  EXPECT_TRUE(counters_equal(reference.counters, ctx.counters));
}

TEST(TemporalRenderer, ReuseDecisionsAreThreadCountInvariant) {
  const Scene scene = generate_scene("playroom", RunScale{8, 64});
  const FrameSequence sequence = flythrough_path(scene).frames(4);
  const TemporalSequenceResult one =
      render_sequence(scene.cloud, sequence, temporal_config(TemporalMode::kReuse, 1));
  const TemporalSequenceResult three =
      render_sequence(scene.cloud, sequence, temporal_config(TemporalMode::kReuse, 3));
  for (std::size_t f = 0; f < sequence.frame_count(); ++f) {
    EXPECT_EQ(one.frame_stats[f].groups_reused, three.frame_stats[f].groups_reused) << f;
    EXPECT_EQ(one.frame_stats[f].groups_resorted, three.frame_stats[f].groups_resorted) << f;
    EXPECT_EQ(one.frame_stats[f].groups_evicted, three.frame_stats[f].groups_evicted) << f;
    EXPECT_TRUE(images_identical(one.images[f], three.images[f])) << f;
  }
}

TEST(TemporalRenderer, HardCutResortsInsteadOfReusing) {
  // Two very different poses: memberships and depth orders churn
  // completely. Nothing may be reused verbatim, every entry must go
  // through a real sort, and the frame stays exact.
  const GaussianCloud cloud = make_random_cloud(1200, 23);
  const Camera a = make_camera(192, 128);
  const Camera b = Camera::from_fov(192, 128, 1.2f,
                                    look_at({3.0f, 2.0f, -4.0f}, {0.0f, 0.0f, 1.0f}));

  TemporalRenderer renderer(temporal_config(TemporalMode::kReuse));
  FrameContext ctx;
  renderer.render(cloud, a, ctx);
  renderer.render(cloud, b, ctx);
  const TemporalStats& stats = renderer.last_frame();
  EXPECT_GT(stats.groups_resorted, 0u);
  EXPECT_EQ(stats.groups_reused, 0u);

  const RenderResult reference = render_gstg(cloud, b, temporal_config(TemporalMode::kOff));
  EXPECT_TRUE(images_identical(reference.image, ctx.image));
  EXPECT_TRUE(counters_equal(reference.counters, ctx.counters));
}

TEST(TemporalRenderer, ResolutionChangeInvalidatesTheCache) {
  const GaussianCloud cloud = make_random_cloud(600, 5);
  TemporalRenderer renderer(temporal_config(TemporalMode::kReuse));
  FrameContext ctx;
  renderer.render(cloud, make_camera(192, 128), ctx);
  renderer.render(cloud, make_camera(256, 192), ctx);  // different group grid
  EXPECT_EQ(renderer.last_frame().groups_reused, 0u);

  // Back on the original grid the old snapshot is gone too (it was
  // overwritten by the 256x192 frame), so nothing stale can be reused.
  renderer.render(cloud, make_camera(192, 128), ctx);
  const RenderResult reference =
      render_gstg(cloud, make_camera(192, 128), temporal_config(TemporalMode::kOff));
  EXPECT_TRUE(images_identical(reference.image, ctx.image));
}

TEST(TemporalRenderer, InvalidateDropsTheCache) {
  const GaussianCloud cloud = make_random_cloud(500, 9);
  const Camera camera = make_camera();
  TemporalRenderer renderer(temporal_config(TemporalMode::kReuse));
  FrameContext ctx;
  renderer.render(cloud, camera, ctx);
  renderer.render(cloud, camera, ctx);
  EXPECT_GT(renderer.last_frame().groups_reused, 0u);
  renderer.invalidate();
  EXPECT_EQ(renderer.total().frames, 0u);
  renderer.render(cloud, camera, ctx);
  EXPECT_EQ(renderer.last_frame().groups_reused, 0u);  // cold again
}

TEST(TemporalRenderer, OffModeMatchesThePlainRendererExactly) {
  const GaussianCloud cloud = make_random_cloud(700, 31);
  const Camera camera = make_camera();
  TemporalRenderer renderer(temporal_config(TemporalMode::kOff));
  FrameContext ctx;
  for (int frame = 0; frame < 3; ++frame) {
    renderer.render(cloud, camera, ctx);
    EXPECT_EQ(renderer.last_frame().groups_reused, 0u);
  }
  const RenderResult reference = render_gstg(cloud, camera, temporal_config(TemporalMode::kOff));
  EXPECT_TRUE(images_identical(reference.image, ctx.image));
  EXPECT_TRUE(counters_equal(reference.counters, ctx.counters));
  EXPECT_DOUBLE_EQ(reference.counters.sort_comparison_volume,
                   ctx.counters.sort_comparison_volume);
}

TEST(TemporalRenderer, EnvOverrideSelectsTheMode) {
  ASSERT_EQ(setenv("GSTG_TEMPORAL", "verify", 1), 0);
  const TemporalRenderer overridden(temporal_config(TemporalMode::kOff));
  EXPECT_EQ(overridden.mode(), TemporalMode::kVerify);
  ASSERT_EQ(unsetenv("GSTG_TEMPORAL"), 0);
  const TemporalRenderer plain(temporal_config(TemporalMode::kOff));
  EXPECT_EQ(plain.mode(), TemporalMode::kOff);
}

TEST(TemporalRenderer, SteadyStateAllocatesNothing) {
  const GaussianCloud cloud = make_random_cloud(700, 77);
  const Camera camera = make_camera();
  TemporalRenderer renderer(temporal_config(TemporalMode::kReuse, 1));

  FrameContext ctx;
  renderer.render(cloud, camera, ctx);  // cold: grow every buffer + cache
  renderer.render(cloud, camera, ctx);  // warm the reuse path's buffers

  const std::size_t before = g_alloc_count.load();
  renderer.render(cloud, camera, ctx);
  const std::size_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u) << "steady-state temporal render allocated";
}

}  // namespace
}  // namespace gstg
