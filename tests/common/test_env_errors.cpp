// Malformed-environment corpus: numeric env overrides must validate the
// entire value. GSTG_THREADS=abc used to silently fall back to hardware
// concurrency and GSTG_THREADS=8garbage used to be accepted as 8; both are
// now errors that name the variable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/runconfig.h"

namespace gstg {
namespace {

/// Restores one environment variable on scope exit, so a failing test
/// cannot leak a malformed value into the rest of the suite.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* current = std::getenv(name);
    had_value_ = current != nullptr;
    if (had_value_) old_value_ = current;
  }
  ~EnvGuard() {
    if (had_value_) {
      setenv(name_.c_str(), old_value_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  void set(const char* value) { ASSERT_EQ(setenv(name_.c_str(), value, 1), 0); }
  void unset() { ASSERT_EQ(unsetenv(name_.c_str()), 0); }

 private:
  std::string name_;
  bool had_value_ = false;
  std::string old_value_;
};

/// The thrown message must name the variable and echo the value.
void expect_env_error(const char* name, const char* value, std::size_t fallback = 3) {
  try {
    (void)env_positive_size(name, fallback);
    FAIL() << name << "=" << value << " should be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(name), std::string::npos) << message;
    EXPECT_NE(message.find(value), std::string::npos) << message;
  }
}

TEST(EnvErrors, ThreadsCorpusRejected) {
  EnvGuard guard("GSTG_THREADS");
  for (const char* bad : {"abc", "8garbage", "0", "-3", "", " 8", "8 ", "+4", "4.5", "0x8"}) {
    guard.set(bad);
    EXPECT_THROW((void)worker_thread_count(), std::invalid_argument) << "value '" << bad << "'";
  }
}

TEST(EnvErrors, ThreadsErrorNamesVariableAndValue) {
  EnvGuard guard("GSTG_THREADS");
  guard.set("8garbage");
  expect_env_error("GSTG_THREADS", "8garbage");
}

TEST(EnvErrors, ThreadsValidValuesAccepted) {
  EnvGuard guard("GSTG_THREADS");
  guard.set("8");
  EXPECT_EQ(worker_thread_count(), 8u);
  guard.set("1");
  EXPECT_EQ(worker_thread_count(), 1u);
  guard.unset();
  EXPECT_GE(worker_thread_count(), 1u);  // hardware fallback
}

TEST(EnvErrors, ThreadsOverflowRejected) {
  EnvGuard guard("GSTG_THREADS");
  guard.set("99999999999999999999999999");
  EXPECT_THROW((void)worker_thread_count(), std::invalid_argument);
}

TEST(EnvErrors, EnvPositiveSizeFallsBackOnlyWhenUnset) {
  EnvGuard guard("GSTG_TEST_KNOB");
  guard.unset();
  EXPECT_EQ(env_positive_size("GSTG_TEST_KNOB", 42), 42u);
  guard.set("7");
  EXPECT_EQ(env_positive_size("GSTG_TEST_KNOB", 42), 7u);
  guard.set("7junk");
  expect_env_error("GSTG_TEST_KNOB", "7junk", 42);
}

}  // namespace
}  // namespace gstg
