// Malformed-CLI corpus: the numeric flag getters must parse the entire
// value and reject junk with an error that names the flag and the value —
// "--tile=16x" used to parse as 16, and "--tile=junk" used to escape as a
// bare std::invalid_argument from std::stoi.
#include "common/cli.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace gstg {
namespace {

CliArgs make_args(const std::vector<std::string>& flags) {
  std::vector<const char*> argv = {"prog"};
  for (const auto& flag : flags) argv.push_back(flag.c_str());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

/// The thrown message must name the flag and echo the offending value.
template <typename Fn>
void expect_named_error(Fn&& fn, const std::string& flag, const std::string& value) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument for --" << flag << "=" << value;
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("--" + flag), std::string::npos) << message;
    EXPECT_NE(message.find(value), std::string::npos) << message;
  }
}

TEST(CliErrors, IntTrailingGarbageRejected) {
  const CliArgs args = make_args({"--tile=16x"});
  expect_named_error([&] { (void)args.get_int("tile", 0); }, "tile", "16x");
}

TEST(CliErrors, IntCorpusRejected) {
  for (const char* bad : {"junk", "", " 16", "16 ", "1.5", "0x10", "+", "-", "--tile"}) {
    const CliArgs args = make_args({std::string("--tile=") + bad});
    EXPECT_THROW((void)args.get_int("tile", 0), std::invalid_argument) << "value '" << bad << "'";
  }
}

TEST(CliErrors, IntOverflowRejected) {
  const CliArgs args = make_args({"--tile=99999999999999999999"});
  expect_named_error([&] { (void)args.get_int("tile", 0); }, "tile", "99999999999999999999");
}

TEST(CliErrors, IntValidValuesParse) {
  const CliArgs args = make_args({"--tile=16", "--offset=-3"});
  EXPECT_EQ(args.get_int("tile", 0), 16);
  EXPECT_EQ(args.get_int("offset", 0), -3);
  EXPECT_EQ(args.get_int("absent", 7), 7);
}

TEST(CliErrors, SizeRejectsNegative) {
  const CliArgs args = make_args({"--threads=-2"});
  expect_named_error([&] { (void)args.get_size("threads", 0); }, "threads", "-2");
}

TEST(CliErrors, SizeValidValuesParse) {
  const CliArgs args = make_args({"--threads=8"});
  EXPECT_EQ(args.get_size("threads", 0), 8u);
  EXPECT_EQ(args.get_size("absent", 3), 3u);
}

TEST(CliErrors, DoubleCorpusRejected) {
  // Includes the strtod-permissive forms the strict contract must reject:
  // nan/inf tokens, hex floats, and leading/trailing whitespace.
  for (const char* bad :
       {"1.5x", "abc", "", "2.5 ", " 2.5", "1,5", "nan", "NAN", "inf", "-inf", "nan(", "0x10",
        "--"}) {
    const CliArgs args = make_args({std::string("--rho=") + bad});
    EXPECT_THROW((void)args.get_double("rho", 0.0), std::invalid_argument)
        << "value '" << bad << "'";
  }
}

TEST(CliErrors, DoubleNamesFlagAndValue) {
  const CliArgs args = make_args({"--rho=1.5x"});
  expect_named_error([&] { (void)args.get_double("rho", 0.0); }, "rho", "1.5x");
}

TEST(CliErrors, DoubleValidValuesParse) {
  const CliArgs args = make_args({"--rho=0.25", "--exp=1e3", "--neg=-2.5"});
  EXPECT_DOUBLE_EQ(args.get_double("rho", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(args.get_double("exp", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(args.get_double("neg", 0.0), -2.5);
  EXPECT_DOUBLE_EQ(args.get_double("absent", 2.5), 2.5);
}

TEST(CliErrors, DoubleOverflowRejected) {
  const CliArgs args = make_args({"--rho=1e999"});
  EXPECT_THROW((void)args.get_double("rho", 0.0), std::invalid_argument);
}

TEST(CliErrors, UnknownFlagStillRejected) {
  const CliArgs args = make_args({"--tpyo=1"});
  EXPECT_THROW(args.require_known({"typo"}), std::invalid_argument);
}

}  // namespace
}  // namespace gstg
