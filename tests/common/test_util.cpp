#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/cli.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/runconfig.h"
#include "common/table.h"

namespace gstg {
namespace {

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--scene=train", "--verbose", "input.ply", "--tile=16", "out"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.get("scene", ""), "train");
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get_int("tile", 0), 16);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.ply");
  EXPECT_EQ(args.positional()[1], "out");
}

TEST(Cli, FallbacksWork) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(Cli, RequireKnownCatchesTypos) {
  const char* argv[] = {"prog", "--tiel=16"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.require_known({"tile", "scene"}), std::invalid_argument);
  const char* argv2[] = {"prog", "--tile=16"};
  CliArgs args2(2, argv2);
  EXPECT_NO_THROW(args2.require_known({"tile", "scene"}));
}

TEST(Rng, DeterministicByName) {
  Rng a("train"), b("train"), c("truck");
  const float va = a.uniform(), vb = b.uniform(), vc = c.uniform();
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Rng, ForkIndependence) {
  Rng parent(42);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_NE(child1.uniform(), child2.uniform());
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.uniform(2.0f, 3.0f);
    EXPECT_GE(x, 2.0f);
    EXPECT_LT(x, 3.0f);
  }
}

TEST(Rng, Fnv1aKnownValue) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(Table, FormatsAlignedColumns) {
  TextTable t("Demo");
  t.set_header({"scene", "a", "b"});
  t.add_row("train", {1.0, 2.5}, 1);
  t.add_row({"longer-name", "10.0", "3"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("train"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, FormatFixedPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

TEST(RunScale, EnvParsing) {
  // The test harness sets GSTG_SCALE=small.
  const RunScale s = run_scale_from_env();
  EXPECT_EQ(s.resolution_divisor, 8);
  EXPECT_EQ(s.gaussian_divisor, 64);
  EXPECT_FALSE(s.is_full());
}

TEST(RunScale, WorkerThreadsPositive) {
  EXPECT_GE(worker_thread_count(), 1u);
}

TEST(Parallel, WorkerExceptionRethrownOnCaller) {
  // A throw inside a worker must surface as a catchable exception on the
  // calling thread (an exception escaping a std::thread is std::terminate),
  // and the other workers must still be joined.
  std::atomic<std::size_t> visited{0};
  const auto run = [&] {
    parallel_for_chunks(
        0, 4096,
        [&](std::size_t lo, std::size_t, std::size_t) {
          visited.fetch_add(1, std::memory_order_relaxed);
          if (lo == 0) throw std::runtime_error("worker failure");
        },
        4);
  };
  EXPECT_THROW(run(), std::runtime_error);
  EXPECT_GE(visited.load(), 1u);
}

TEST(Parallel, InlinePathPropagatesToo) {
  const auto run = [] {
    parallel_for_chunks(0, 8, [](std::size_t, std::size_t, std::size_t) {
      throw std::invalid_argument("small range runs inline");
    });
  };
  EXPECT_THROW(run(), std::invalid_argument);
}

}  // namespace
}  // namespace gstg
