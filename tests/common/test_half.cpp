#include "common/half.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>

namespace gstg {
namespace {

TEST(Half, ZeroRoundTrips) {
  EXPECT_EQ(Half(0.0f).bits(), 0u);
  EXPECT_EQ(Half(0.0f).to_float(), 0.0f);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000u);
  EXPECT_TRUE(std::signbit(Half(-0.0f).to_float()));
}

TEST(Half, ExactSmallIntegers) {
  // Integers up to 2^11 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; i += 17) {
    EXPECT_EQ(Half(static_cast<float>(i)).to_float(), static_cast<float>(i)) << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3c00u);
  EXPECT_EQ(Half(-2.0f).bits(), 0xc000u);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800u);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7bffu);  // max normal half
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(Half(65520.0f).is_inf());
  EXPECT_TRUE(Half(1e30f).is_inf());
  EXPECT_TRUE(Half(-1e30f).is_inf());
  EXPECT_LT(Half(-1e30f).to_float(), 0.0f);
  // Just below the rounding boundary stays finite.
  EXPECT_FALSE(Half(65519.0f).is_inf());
  EXPECT_EQ(Half(65519.0f).to_float(), 65504.0f);
}

TEST(Half, InfinityAndNanPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(Half(inf).is_inf());
  EXPECT_EQ(Half(inf).to_float(), inf);
  EXPECT_EQ(Half(-inf).to_float(), -inf);
  EXPECT_TRUE(Half(std::numeric_limits<float>::quiet_NaN()).is_nan());
  EXPECT_TRUE(std::isnan(Half(std::numeric_limits<float>::quiet_NaN()).to_float()));
}

TEST(Half, SubnormalsRoundTrip) {
  // Smallest positive subnormal half: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(tiny).bits(), 0x0001u);
  EXPECT_EQ(Half(tiny).to_float(), tiny);
  // Below half the smallest subnormal rounds to zero.
  EXPECT_EQ(Half(std::ldexp(1.0f, -26)).bits(), 0x0000u);
  // Largest subnormal.
  const float big_sub = std::ldexp(1023.0f, -24);
  EXPECT_EQ(Half(big_sub).bits(), 0x03ffu);
  EXPECT_EQ(Half(big_sub).to_float(), big_sub);
}

TEST(Half, NanSignAndPayloadSurvive) {
  // A NaN must stay a NaN through fp32 -> fp16 -> fp32 with its sign intact,
  // and the conversion must set a payload bit (never produce infinity).
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  const Half pos(qnan);
  const Half neg(-qnan);
  EXPECT_TRUE(pos.is_nan());
  EXPECT_TRUE(neg.is_nan());
  EXPECT_FALSE(pos.is_inf());
  EXPECT_EQ(neg.bits() & 0x8000u, 0x8000u);
  EXPECT_TRUE(std::isnan(neg.to_float()));
  EXPECT_TRUE(std::signbit(neg.to_float()));
}

TEST(Half, NanWithSmallPayloadStaysNan) {
  // A float NaN whose high mantissa bits are zero would truncate to an
  // all-zero fp16 mantissa (= infinity) without the payload-preservation
  // bit. Build one from raw bits: exponent all ones, mantissa 1.
  const std::uint32_t raw = 0x7f80'0001u;
  float f;
  static_assert(sizeof(f) == sizeof(raw));
  std::memcpy(&f, &raw, sizeof(f));
  ASSERT_TRUE(std::isnan(f));
  EXPECT_TRUE(Half(f).is_nan());
  EXPECT_FALSE(Half(f).is_inf());
}

TEST(Half, InfinityBitPatterns) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Half(inf).bits(), 0x7c00u);
  EXPECT_EQ(Half(-inf).bits(), 0xfc00u);
  EXPECT_TRUE(Half::from_bits(0x7c00u).is_inf());
  EXPECT_FALSE(Half::from_bits(0x7c00u).is_nan());
  EXPECT_TRUE(std::isinf(Half::from_bits(0xfc00u).to_float()));
}

TEST(Half, SubnormalBoundaryRounding) {
  // 2^-25 is exactly halfway between 0 and the smallest subnormal 2^-24:
  // round-to-nearest-even keeps the even neighbour (zero).
  EXPECT_EQ(Half(std::ldexp(1.0f, -25)).bits(), 0x0000u);
  // Anything strictly above the halfway point rounds up to the subnormal.
  EXPECT_EQ(Half(std::ldexp(1.1f, -25)).bits(), 0x0001u);
  // 3 * 2^-25 is halfway between subnormals 1 and 2: rounds to even (2).
  EXPECT_EQ(Half(3.0f * std::ldexp(1.0f, -25)).bits(), 0x0002u);
  // Negative side mirrors with the sign bit.
  EXPECT_EQ(Half(-std::ldexp(1.0f, -25)).bits(), 0x8000u);
  EXPECT_EQ(Half(-std::ldexp(1.0f, -24)).bits(), 0x8001u);
}

TEST(Half, SubnormalToNormalTransition) {
  // Largest subnormal (1023 * 2^-24) and smallest normal (2^-14) are
  // adjacent; values between them must round to one of the two.
  const float largest_sub = std::ldexp(1023.0f, -24);
  const float smallest_norm = std::ldexp(1.0f, -14);
  EXPECT_EQ(Half(largest_sub).bits(), 0x03ffu);
  EXPECT_EQ(Half(smallest_norm).bits(), 0x0400u);
  const float midpoint = (largest_sub + smallest_norm) / 2.0f;
  // Halfway rounds to even: mantissa 0x400 (the normal).
  EXPECT_EQ(Half(midpoint).bits(), 0x0400u);
}

TEST(Half, SubnormalsExhaustiveRoundTrip) {
  // Every subnormal half (exp 0, mantissa 1..1023, both signs) converts to
  // an exactly-representable float and back to the same bits.
  for (std::uint32_t mant = 1; mant <= 0x3ffu; ++mant) {
    for (const std::uint32_t sign : {0x0000u, 0x8000u}) {
      const auto bits = static_cast<std::uint16_t>(sign | mant);
      const Half h = Half::from_bits(bits);
      const float f = h.to_float();
      EXPECT_EQ(f, std::ldexp(static_cast<float>(mant), -24) * (sign ? -1.0f : 1.0f));
      EXPECT_EQ(Half(f).bits(), bits);
    }
  }
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half; RNE keeps
  // the even mantissa (1.0).
  const float halfway_down = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(Half(halfway_down).bits(), 0x3c00u);
  // 1 + 3*2^-11 is halfway between the 1st and 2nd step; rounds to even (2nd).
  const float halfway_up = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(Half(halfway_up).bits(), 0x3c02u);
}

TEST(Half, RoundTripIsIdempotent) {
  std::mt19937 gen(7);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  for (int i = 0; i < 10000; ++i) {
    const float x = dist(gen);
    const float once = quantize_to_half(x);
    EXPECT_EQ(quantize_to_half(once), once);
  }
}

TEST(Half, AllBitPatternsRoundTripThroughFloat) {
  // Every finite half value converts to float and back to the same bits —
  // exhaustive over all 2^16 patterns.
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const Half h = Half::from_bits(static_cast<std::uint16_t>(bits));
    if (h.is_nan()) continue;  // NaN payloads need not be bit-preserved
    const Half back(h.to_float());
    EXPECT_EQ(back.bits(), h.bits()) << "pattern 0x" << std::hex << bits;
    if (back.bits() != h.bits()) break;
  }
}

TEST(Half, RelativeErrorBoundedForNormals) {
  std::mt19937 gen(13);
  std::uniform_real_distribution<float> mag(-4.0f, 4.0f);
  for (int i = 0; i < 10000; ++i) {
    const float x = std::pow(10.0f, mag(gen));
    const float q = quantize_to_half(x);
    // Half has 11 significand bits: relative error <= 2^-11.
    EXPECT_LE(std::fabs(q - x) / x, std::ldexp(1.0f, -11) + 1e-7f) << x;
  }
}

class HalfMonotonicTest : public ::testing::TestWithParam<float> {};

TEST_P(HalfMonotonicTest, ConversionIsMonotonic) {
  const float base = GetParam();
  float prev = quantize_to_half(base);
  for (int step = 1; step <= 200; ++step) {
    const float x = base * (1.0f + static_cast<float>(step) * 1e-4f);
    const float q = quantize_to_half(x);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HalfMonotonicTest,
                         ::testing::Values(1e-6f, 1e-3f, 0.1f, 1.0f, 42.0f, 1000.0f, 30000.0f));

}  // namespace
}  // namespace gstg
