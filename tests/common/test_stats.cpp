#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

namespace gstg {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  std::mt19937 gen(3);
  std::normal_distribution<double> dist(10.0, 4.0);
  RunningStat whole, part1, part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(gen);
    whole.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(part1.min(), whole.min());
  EXPECT_EQ(part1.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(GeometricMean, KnownValues) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 9.0}), 6.0);
  EXPECT_NEAR(geometric_mean({1.0, 2.0, 4.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({5.0}), 5.0);
}

TEST(GeometricMean, RejectsInvalidInput) {
  EXPECT_THROW(geometric_mean({}), std::invalid_argument);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(geometric_mean({1.0, -2.0}), std::invalid_argument);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  for (double x = 0.5; x < 10.0; x += 1.0) h.add(x);  // 10 samples
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(h.bin_count(i), 2u) << i;
    EXPECT_DOUBLE_EQ(h.bin_lower_edge(i), 2.0 * static_cast<double>(i));
  }
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge counts as overflow (half-open range)
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gstg
