#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

namespace gstg {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  std::mt19937 gen(3);
  std::normal_distribution<double> dist(10.0, 4.0);
  RunningStat whole, part1, part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(gen);
    whole.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(part1.min(), whole.min());
  EXPECT_EQ(part1.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(GeometricMean, KnownValues) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 9.0}), 6.0);
  EXPECT_NEAR(geometric_mean({1.0, 2.0, 4.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({5.0}), 5.0);
}

TEST(GeometricMean, RejectsInvalidInput) {
  EXPECT_THROW(geometric_mean({}), std::invalid_argument);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(geometric_mean({1.0, -2.0}), std::invalid_argument);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  for (double x = 0.5; x < 10.0; x += 1.0) h.add(x);  // 10 samples
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(h.bin_count(i), 2u) << i;
    EXPECT_DOUBLE_EQ(h.bin_lower_edge(i), 2.0 * static_cast<double>(i));
  }
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge counts as overflow (half-open range)
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --- Percentiles (the shared helper render_server / bench_service use) ----

TEST(Percentile, NearestRankKnownValues) {
  const std::vector<double> sorted = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 30.0);   // rank ceil(2.5)=3
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.95), 50.0);  // rank ceil(4.75)=5
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 50.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 0.99), 42.0);
}

TEST(Percentile, UnsortedOverloadSortsFirst) {
  EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 50.0, 20.0, 40.0}, 0.5), 30.0);
}

TEST(Percentile, RejectsInvalidInput) {
  EXPECT_THROW(percentile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile_sorted({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile_sorted({1.0}, 1.1), std::invalid_argument);
}

TEST(Percentile, SummaryMatchesIndividualCalls) {
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) values.push_back(static_cast<double>(i));
  const PercentileSummary s = summarize_percentiles(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
}

// --- LatencyHistogram (log-bucketed, backs the metrics registry) ----------

TEST(LatencyHistogram, QuantilesWithinBucketError) {
  LatencyHistogram h;  // lo=1e-3 ms, 5% growth
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i) * 0.1);  // 0.1..100 ms
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 50.05, 1e-9);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 50.0 * 0.05);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 99.0 * 0.05);
  // The quantile never exceeds the observed maximum even when the bucket's
  // upper edge does.
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(LatencyHistogram, EmptyAndOutOfRange) {
  LatencyHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  // Below lo lands in bucket 0; far above the top clamps into the last.
  h.add(1e-9);
  h.add(1e9);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 1u);
}

TEST(LatencyHistogram, MergeMatchesSequentialAndChecksLayout) {
  LatencyHistogram whole, part1, part2;
  for (int i = 1; i <= 200; ++i) {
    const double x = static_cast<double>(i);
    whole.add(x);
    (i <= 80 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.total(), whole.total());
  EXPECT_DOUBLE_EQ(part1.min(), whole.min());
  EXPECT_DOUBLE_EQ(part1.max(), whole.max());
  EXPECT_DOUBLE_EQ(part1.quantile(0.5), whole.quantile(0.5));

  LatencyHistogram different(0.5, 2.0, 16);
  different.add(1.0);  // merge ignores an empty source, so give it a sample
  EXPECT_THROW(part1.merge(different), std::invalid_argument);
}

TEST(LatencyHistogram, RejectsDegenerateLayout) {
  EXPECT_THROW(LatencyHistogram(0.0, 1.05, 10), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(1.0, 1.05, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gstg
