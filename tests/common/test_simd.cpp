// SIMD layer tests: backend naming/detection, the fast_exp ULP contract, and
// the per-backend consistency suite — every compiled backend must produce
// bit-identical framebuffers and counters in exact mode, and bounded-ULP
// divergence in fast-exp mode, across the lossless sweep scenes.
#include "common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "../test_helpers.h"
#include "camera/ewa.h"
#include "core/pipeline.h"
#include "gaussian/sh.h"
#include "geometry/ellipse.h"
#include "render/pipeline.h"
#include "render/preprocess.h"
#include "render/simd_kernels.h"
#include "scene/scene.h"

namespace gstg {
namespace {

using testutil::make_camera;

// --- naming / detection ----------------------------------------------------

TEST(SimdBackendNames, RoundTrip) {
  for (const SimdBackend b : {SimdBackend::kAuto, SimdBackend::kScalar, SimdBackend::kSse4,
                              SimdBackend::kAvx2, SimdBackend::kNeon}) {
    EXPECT_EQ(simd_backend_from_string(to_string(b)), b);
  }
  EXPECT_EQ(simd_backend_from_string(nullptr), SimdBackend::kAuto);
  EXPECT_THROW(simd_backend_from_string("sse9000"), std::invalid_argument);
}

TEST(SimdBackendNames, ScalarAlwaysAvailable) {
  const auto& avail = available_simd_backends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), SimdBackend::kScalar);
  for (const SimdBackend b : avail) {
    EXPECT_TRUE(cpu_supports(b)) << to_string(b);
    EXPECT_EQ(simd_kernels(b).backend, b);
    EXPECT_GE(simd_kernels(b).lane_width, 1);
  }
}

TEST(SimdDispatch, ResolveNeverReturnsAuto) {
  for (const SimdBackend req : {SimdBackend::kAuto, SimdBackend::kScalar, SimdBackend::kSse4,
                                SimdBackend::kAvx2, SimdBackend::kNeon}) {
    const SimdBackend got = resolve_simd_backend(req);
    EXPECT_NE(got, SimdBackend::kAuto);
    EXPECT_TRUE(cpu_supports(got));
  }
  // The widest verified backend is what kAuto uses by default.
  EXPECT_EQ(resolve_simd_backend(SimdBackend::kAuto), widest_verified_backend());
}

TEST(SimdDispatch, EnvOverrideForcesScalar) {
  ASSERT_EQ(setenv("GSTG_SIMD", "scalar", 1), 0);
  EXPECT_EQ(resolve_simd_backend(SimdBackend::kAuto), SimdBackend::kScalar);
  // An explicit config choice beats the env override.
  EXPECT_EQ(resolve_simd_backend(widest_verified_backend()), widest_verified_backend());
  ASSERT_EQ(unsetenv("GSTG_SIMD"), 0);
  EXPECT_EQ(resolve_simd_backend(SimdBackend::kAuto), widest_verified_backend());
}

TEST(SimdDispatch, SimdKernelsThrowsOnAuto) {
  EXPECT_THROW(simd_kernels(SimdBackend::kAuto), std::invalid_argument);
}

// --- fast_exp contract -----------------------------------------------------

std::int64_t ulp_distance(float a, float b) {
  // Monotone integer mapping of IEEE-754 floats (sign-magnitude -> offset).
  const auto to_ordered = [](float x) {
    std::int32_t i = std::bit_cast<std::int32_t>(x);
    return static_cast<std::int64_t>(i < 0 ? std::int32_t(0x80000000u) - i : i);
  };
  return std::llabs(to_ordered(a) - to_ordered(b));
}

TEST(FastExp, UlpBoundAgainstStdExp) {
  // Dense sweep of the documented input range; the contract promises <= 8
  // ULP vs the correctly-rounded expf (measured < 3).
  std::int64_t worst = 0;
  float worst_x = 0.0f;
  for (int i = -873000; i <= 500000; i += 7) {
    const float x = static_cast<float>(i) * 1e-4f;
    const float got = fast_exp<1>(VecF32<1>::broadcast(x)).v[0];
    const float want = std::exp(x);
    const std::int64_t d = ulp_distance(got, want);
    if (d > worst) {
      worst = d;
      worst_x = x;
    }
  }
  EXPECT_LE(worst, 8) << "worst at x = " << worst_x;
}

TEST(FastExp, BlendingRangeIsTight) {
  // The rasterizer only evaluates exp on [-q_max/2, 0] (alpha >= 1/255);
  // confirm relative error there is well below the alpha threshold.
  for (int i = 0; i <= 600; ++i) {
    const float x = -static_cast<float>(i) * 0.01f;  // [-6, 0]
    const float got = fast_exp<4>(VecF32<4>::broadcast(x)).v[2];
    const float want = std::exp(x);
    EXPECT_NEAR(got, want, 4e-7f + 1e-6f * want) << "x = " << x;
  }
}

TEST(FastExp, ExtremesAreFiniteAndNanIsSafe) {
  EXPECT_GT(fast_exp<1>(VecF32<1>::broadcast(-1.0e30f)).v[0], 0.0f);
  EXPECT_TRUE(std::isfinite(fast_exp<1>(VecF32<1>::broadcast(1.0e30f)).v[0]));
  const float nan_result =
      fast_exp<1>(VecF32<1>::broadcast(std::numeric_limits<float>::quiet_NaN())).v[0];
  EXPECT_TRUE(std::isfinite(nan_result));  // documented: NaN maps to ~0
}

// --- per-backend consistency across the lossless sweep scenes --------------

struct SweepScene {
  const char* name;
  int width, height;
  std::size_t gaussians;
  unsigned seed;
};

const SweepScene kSweep[] = {
    {"random_small", 240, 176, 1200, 91},
    {"random_edge", 250, 187, 900, 97},  // non-multiple image sizes
};

/// Renders the GS-TG pipeline under one SIMD policy.
RenderResult render_with(const SweepScene& sc, SimdPolicy simd) {
  const Camera cam = make_camera(sc.width, sc.height);
  const GaussianCloud cloud = testutil::make_random_cloud(sc.gaussians, sc.seed);
  GsTgConfig config;
  config.simd = simd;
  return render_gstg(cloud, cam, config);
}

TEST(SimdBackendConsistency, ExactModeIsBitIdenticalAcrossBackends) {
  for (const SweepScene& sc : kSweep) {
    const RenderResult ref = render_with(sc, {SimdBackend::kScalar, ExpMode::kExact});
    for (const SimdBackend b : available_simd_backends()) {
      const RenderResult got = render_with(sc, {b, ExpMode::kExact});
      // Bitwise framebuffer equality, not just value equality.
      ASSERT_EQ(ref.image.pixels().size(), got.image.pixels().size());
      EXPECT_EQ(std::memcmp(ref.image.pixels().data(), got.image.pixels().data(),
                            ref.image.pixels().size() * sizeof(Vec3)),
                0)
          << sc.name << " backend " << to_string(b);
      EXPECT_EQ(ref.counters.alpha_computations, got.counters.alpha_computations)
          << sc.name << " backend " << to_string(b);
      EXPECT_EQ(ref.counters.blend_ops, got.counters.blend_ops);
      EXPECT_EQ(ref.counters.early_exit_pixels, got.counters.early_exit_pixels);
      EXPECT_EQ(ref.counters.visible_gaussians, got.counters.visible_gaussians);
      EXPECT_EQ(ref.counters.tile_pairs, got.counters.tile_pairs);
      EXPECT_EQ(ref.counters.sort_pairs, got.counters.sort_pairs);
    }
  }
}

TEST(SimdBackendConsistency, ExactModeMatchesBaselinePipelineToo) {
  // The baseline tile pipeline takes the same knob; cross-check one scene.
  const Camera cam = make_camera(240, 176);
  const GaussianCloud cloud = testutil::make_random_cloud(1000, 17);
  RenderConfig scalar_cfg;
  scalar_cfg.simd = {SimdBackend::kScalar, ExpMode::kExact};
  const RenderResult ref = render_baseline(cloud, cam, scalar_cfg);
  for (const SimdBackend b : available_simd_backends()) {
    RenderConfig cfg;
    cfg.simd = {b, ExpMode::kExact};
    const RenderResult got = render_baseline(cloud, cam, cfg);
    EXPECT_EQ(max_abs_diff(ref.image, got.image), 0.0f) << to_string(b);
    EXPECT_EQ(ref.counters.alpha_computations, got.counters.alpha_computations);
  }
}

TEST(SimdBackendConsistency, FastExpModeDivergenceIsBounded) {
  for (const SweepScene& sc : kSweep) {
    const RenderResult ref = render_with(sc, {SimdBackend::kScalar, ExpMode::kExact});
    for (const SimdBackend b : available_simd_backends()) {
      const RenderResult got = render_with(sc, {b, ExpMode::kFast});
      // fast_exp is a <= 8 ULP approximation of exp; through the blending
      // recurrence that stays far below any visible threshold. Bound both
      // the absolute error and the per-channel ULP distance.
      EXPECT_LT(max_abs_diff(ref.image, got.image), 2e-4f)
          << sc.name << " backend " << to_string(b);
      std::int64_t worst_ulp = 0;
      for (std::size_t i = 0; i < ref.image.pixels().size(); ++i) {
        const Vec3 a = ref.image.pixels()[i];
        const Vec3 c = got.image.pixels()[i];
        worst_ulp = std::max({worst_ulp, ulp_distance(a.x, c.x), ulp_distance(a.y, c.y),
                              ulp_distance(a.z, c.z)});
      }
      EXPECT_LT(worst_ulp, 4096) << sc.name << " backend " << to_string(b);
      // The workload counters stay exact even in fast mode: the in-range
      // guard uses q only, which fast_exp never touches.
      EXPECT_EQ(ref.counters.alpha_computations, got.counters.alpha_computations);
      EXPECT_EQ(ref.counters.pixel_list_work, got.counters.pixel_list_work);
    }
  }
}

TEST(SimdBackendConsistency, GstgStaysLosslessUnderEveryBackend) {
  // The paper's lossless claim must hold per backend: baseline vs GS-TG,
  // both running the same backend.
  const Camera cam = make_camera(200, 152);
  const GaussianCloud cloud = testutil::make_random_cloud(800, 23);
  for (const SimdBackend b : available_simd_backends()) {
    RenderConfig base;
    base.simd = {b, ExpMode::kExact};
    const RenderResult ref = render_baseline(cloud, cam, base);
    GsTgConfig config;
    config.simd = {b, ExpMode::kExact};
    const RenderResult ours = render_gstg(cloud, cam, config);
    EXPECT_EQ(max_abs_diff(ref.image, ours.image), 0.0f) << to_string(b);
  }
}

TEST(SimdBackendConsistency, PreprocessMatchesScalarReferenceFunctions) {
  // The lane kernels replicate the canonical scalar math (Camera::to_view /
  // in_frustum / view_to_pixel, GaussianCloud::covariance3d,
  // project_covariance, Sym2 inverse, eval_sh_color) operation for
  // operation. This test ties the two together bit-exactly: a change to any
  // reference function that is not mirrored in simd_kernels.inl fails here.
  const Camera cam = make_camera();
  const GaussianCloud cloud = testutil::make_random_cloud(400, 57);
  const Vec3 cam_pos = cam.position();

  for (const SimdBackend b : available_simd_backends()) {
    RenderConfig config;
    config.simd = {b, ExpMode::kExact};
    RenderCounters counters;
    const auto splats = preprocess(cloud, cam, config, counters);
    ASSERT_GT(splats.size(), 50u) << to_string(b);

    // Survivor set: exactly the gaussians the reference predicates keep.
    std::size_t expected = 0;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      const Vec3 view = cam.to_view(cloud.position(i));
      if (!cam.in_frustum(view)) continue;
      if (cloud.opacity(i) < kAlphaThreshold) continue;
      if (project_covariance(cam, cloud.covariance3d(i), view).determinant() <= 0.0f) continue;
      ++expected;
    }
    EXPECT_EQ(splats.size(), expected) << to_string(b);

    for (const ProjectedSplat& s : splats) {
      const std::size_t i = s.index;
      const Vec3 view = cam.to_view(cloud.position(i));
      const Sym2 cov = project_covariance(cam, cloud.covariance3d(i), view);
      EXPECT_EQ(s.cov, cov) << to_string(b) << " index " << i;
      EXPECT_EQ(s.conic, inverse(cov)) << to_string(b) << " index " << i;
      EXPECT_EQ(s.center, cam.view_to_pixel(view)) << to_string(b) << " index " << i;
      EXPECT_EQ(s.depth, view.z);
      EXPECT_EQ(s.opacity, cloud.opacity(i));
      EXPECT_EQ(s.rho, kThreeSigmaRho);
      EXPECT_EQ(s.rgb,
                eval_sh_color(cloud.sh_degree(), cloud.sh(i), normalized(cloud.position(i) - cam_pos)));
    }
  }
}

TEST(SimdBackendConsistency, SyntheticSceneRecipeBitIdentical) {
  // One real scene recipe (tiny scale) through every backend.
  const Scene scene = generate_scene("train", RunScale{8, 512});
  GsTgConfig scalar_cfg;
  scalar_cfg.simd = {SimdBackend::kScalar, ExpMode::kExact};
  const RenderResult ref = render_gstg(scene.cloud, scene.camera, scalar_cfg);
  for (const SimdBackend b : available_simd_backends()) {
    GsTgConfig cfg;
    cfg.simd = {b, ExpMode::kExact};
    const RenderResult got = render_gstg(scene.cloud, scene.camera, cfg);
    EXPECT_EQ(max_abs_diff(ref.image, got.image), 0.0f) << to_string(b);
  }
}

}  // namespace
}  // namespace gstg
