#include <gtest/gtest.h>

#include <cmath>

#include "camera/camera.h"
#include "camera/ewa.h"

namespace gstg {
namespace {

constexpr float kEps = 1e-4f;

Camera test_camera(int w = 640, int h = 480) {
  return Camera::from_fov(w, h, 1.2f, look_at({0, 0, -5}, {0, 0, 0}));
}

TEST(Camera, FromFovIntrinsics) {
  const Camera cam = test_camera();
  EXPECT_EQ(cam.width(), 640);
  EXPECT_EQ(cam.height(), 480);
  EXPECT_FLOAT_EQ(cam.cx(), 320.0f);
  EXPECT_FLOAT_EQ(cam.cy(), 240.0f);
  EXPECT_NEAR(cam.fx(), 320.0f / std::tan(0.6f), 1e-2f);
  EXPECT_EQ(cam.fx(), cam.fy());
  EXPECT_NEAR(cam.tan_half_fov_x(), std::tan(0.6f), 1e-5f);
}

TEST(Camera, RejectsBadParameters) {
  const Mat4 id = Mat4::identity();
  EXPECT_THROW(Camera::from_fov(0, 100, 1.0f, id), std::invalid_argument);
  EXPECT_THROW(Camera::from_fov(100, 100, -1.0f, id), std::invalid_argument);
  EXPECT_THROW(Camera::from_fov(100, 100, 3.2f, id), std::invalid_argument);
  EXPECT_THROW(Camera(100, 100, -1.0f, 1.0f, 50, 50, id), std::invalid_argument);
}

TEST(Camera, LookAtPlacesTargetAtImageCenter) {
  const Camera cam = test_camera();
  const Vec3 view = cam.to_view({0, 0, 0});
  EXPECT_NEAR(view.x, 0.0f, kEps);
  EXPECT_NEAR(view.y, 0.0f, kEps);
  EXPECT_NEAR(view.z, 5.0f, kEps);  // +z forward, 5 units away
  const Vec2 px = cam.view_to_pixel(view);
  EXPECT_NEAR(px.x, 320.0f, 1e-2f);
  EXPECT_NEAR(px.y, 240.0f, 1e-2f);
}

TEST(Camera, PositionRecoversEye) {
  const Camera cam = test_camera();
  const Vec3 eye = cam.position();
  EXPECT_NEAR(eye.x, 0.0f, kEps);
  EXPECT_NEAR(eye.y, 0.0f, kEps);
  EXPECT_NEAR(eye.z, -5.0f, kEps);
}

TEST(Camera, WorldYUpMapsToSmallerPixelV) {
  // With the default up hint (world y up), a point above the target must
  // land above the image centre (smaller v).
  const Camera cam = test_camera();
  const Vec3 view = cam.to_view({0, 1.0f, 0});
  const Vec2 px = cam.view_to_pixel(view);
  EXPECT_LT(px.y, 240.0f);
}

TEST(Camera, FrustumCulling) {
  const Camera cam = test_camera();
  EXPECT_TRUE(cam.in_frustum({0, 0, 5.0f}));
  EXPECT_FALSE(cam.in_frustum({0, 0, 0.1f}));    // before near plane
  EXPECT_FALSE(cam.in_frustum({0, 0, -5.0f}));   // behind camera
  // Just outside the image but within the 1.3x guard band: kept.
  const float lim = cam.tan_half_fov_x() * 5.0f;
  EXPECT_TRUE(cam.in_frustum({lim * 1.2f, 0, 5.0f}));
  EXPECT_FALSE(cam.in_frustum({lim * 1.4f, 0, 5.0f}));
}

TEST(LookAt, HandlesDegenerateUpHint) {
  // Looking straight down with up hint parallel to view direction.
  const Mat4 m = look_at({0, 10, 0}, {0, 0, 0}, {0, -1, 0});
  const Mat3 r = m.rotation_block();
  const Mat3 rrt = r * r.transposed();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(rrt(i, j), i == j ? 1.0f : 0.0f, kEps);
  }
}

TEST(Ewa, IsotropicGaussianAtCenterScalesByFocalOverDepth) {
  const Camera cam = test_camera();
  // Isotropic world covariance sigma^2 I at the optical axis, depth z:
  // screen covariance ~ (fx * sigma / z)^2 I + dilation.
  const float sigma = 0.2f;
  Mat3 cov3d{};
  cov3d(0, 0) = cov3d(1, 1) = cov3d(2, 2) = sigma * sigma;
  const Vec3 t{0, 0, 5.0f};
  const Sym2 cov = project_covariance(cam, cov3d, t);
  const float expected = std::pow(cam.fx() * sigma / 5.0f, 2.0f) + kCovarianceDilation;
  EXPECT_NEAR(cov.xx, expected, 0.01f * expected);
  EXPECT_NEAR(cov.yy, expected, 0.01f * expected);
  EXPECT_NEAR(cov.xy, 0.0f, 0.01f * expected);
}

TEST(Ewa, FartherMeansSmaller) {
  const Camera cam = test_camera();
  Mat3 cov3d{};
  cov3d(0, 0) = cov3d(1, 1) = cov3d(2, 2) = 0.04f;
  const Sym2 near_cov = project_covariance(cam, cov3d, {0, 0, 2.0f});
  const Sym2 far_cov = project_covariance(cam, cov3d, {0, 0, 20.0f});
  EXPECT_GT(near_cov.xx, far_cov.xx);
  EXPECT_GT(near_cov.yy, far_cov.yy);
}

TEST(Ewa, DilationGuaranteesMinimumSize) {
  const Camera cam = test_camera();
  Mat3 cov3d{};  // near-degenerate tiny Gaussian
  cov3d(0, 0) = cov3d(1, 1) = cov3d(2, 2) = 1e-10f;
  const Sym2 cov = project_covariance(cam, cov3d, {0, 0, 50.0f});
  EXPECT_GE(cov.xx, kCovarianceDilation * 0.999f);
  EXPECT_GE(cov.yy, kCovarianceDilation * 0.999f);
  EXPECT_GT(cov.determinant(), 0.0f);
}

TEST(Ewa, OffAxisProducesAnisotropy) {
  const Camera cam = test_camera();
  Mat3 cov3d{};
  cov3d(0, 0) = cov3d(1, 1) = cov3d(2, 2) = 0.04f;
  // Far off-axis in both x and y: the perspective Jacobian shears the
  // footprint (the xy term is proportional to x*y).
  const float x = cam.tan_half_fov_x() * 5.0f * 0.9f;
  const float y = cam.tan_half_fov_y() * 5.0f * 0.9f;
  const Sym2 cov = project_covariance(cam, cov3d, {x, y, 5.0f});
  EXPECT_NE(cov.xy, 0.0f);
}

}  // namespace
}  // namespace gstg
