// RenderService: every response is bit-identical to a sequential
// render_gstg of the same request (the verify gate audits it), malformed
// requests and broken scenes resolve with typed errors instead of killing
// the process, the bounded queue applies backpressure, and concurrent
// client streams stay deterministic (this suite runs under TSan via the
// `service` label).
#include "service/render_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "gaussian/ply_io.h"
#include "test_helpers.h"

namespace gstg {
namespace {

using testutil::make_camera;
using testutil::make_random_cloud;

ServiceConfig small_service_config() {
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 32;
  config.scene_capacity = 2;
  config.max_batch = 8;
  config.verify = true;  // every test render runs the bit-identity audit
  return config;
}

SceneCache::Loader fixed_cloud_loader(std::size_t n = 400) {
  return [n](const std::string& key) {
    return make_random_cloud(n, static_cast<unsigned>(key.size() + 1));
  };
}

/// The sequential reference the service must match bit-for-bit.
Framebuffer sequential_reference(const GaussianCloud& cloud, const Camera& camera,
                                 const ServiceConfig& config) {
  GsTgConfig reference = config.render;
  reference.temporal = TemporalMode::kOff;
  return render_gstg(cloud, camera, reference).image;
}

TEST(RenderService, StatelessRequestsBitIdenticalToSequential) {
  const ServiceConfig config = small_service_config();
  RenderService service(config, fixed_cloud_loader());
  const GaussianCloud cloud = fixed_cloud_loader()("scene");

  std::vector<Camera> cameras;
  std::vector<std::future<RenderResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    cameras.push_back(make_camera(96 + 16 * i, 64 + 8 * i));
    futures.push_back(service.submit(RenderRequest{"scene", cameras.back(), 0}));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    RenderResponse response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.error;
    const Framebuffer reference = sequential_reference(cloud, cameras[i], config);
    EXPECT_EQ(max_abs_diff(reference, response.image), 0.0f) << "request " << i;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests_completed, 6u);
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_EQ(stats.verify_mismatches, 0u);
  EXPECT_EQ(stats.cache_misses, 1u);  // load-once
  // The scene resolves once per batch: every dispatch after the first hits.
  EXPECT_EQ(stats.cache_hits + 1, stats.batches);
}

TEST(RenderService, SessionStreamReusesSortsAndStaysExact) {
  const ServiceConfig config = small_service_config();
  RenderService service(config, fixed_cloud_loader());
  const GaussianCloud cloud = fixed_cloud_loader()("scene");
  const Camera camera = make_camera(128, 96);
  const Framebuffer reference = sequential_reference(cloud, camera, config);

  std::size_t reused_groups = 0;
  for (int frame = 0; frame < 4; ++frame) {
    RenderResponse response = service.submit(RenderRequest{"scene", camera, 7}).get();
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(max_abs_diff(reference, response.image), 0.0f) << "frame " << frame;
    reused_groups += response.temporal.groups_reused;
  }
  // A static camera stream reuses cached group orders from frame 1 on.
  EXPECT_GT(reused_groups, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.reuse_pairs, 0u);
  EXPECT_EQ(stats.verify_mismatches, 0u);
  EXPECT_EQ(stats.sessions, 1u);
}

TEST(RenderService, ConcurrentClientStreamsDeterministic) {
  const ServiceConfig config = small_service_config();
  RenderService service(config, fixed_cloud_loader());
  const GaussianCloud cloud = fixed_cloud_loader()("scene");

  constexpr int kClients = 4;
  constexpr int kFrames = 5;
  std::vector<Camera> cameras;
  for (int c = 0; c < kClients; ++c) cameras.push_back(make_camera(96 + 8 * c, 72));

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const Framebuffer reference = sequential_reference(cloud, cameras[c], config);
      std::vector<std::future<RenderResponse>> futures;
      for (int f = 0; f < kFrames; ++f) {
        futures.push_back(
            service.submit(RenderRequest{"scene", cameras[c], static_cast<std::uint64_t>(c + 1)}));
      }
      for (auto& future : futures) {
        RenderResponse response = future.get();
        if (!response.ok() || max_abs_diff(reference, response.image) != 0.0f) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests_completed, static_cast<std::size_t>(kClients * kFrames));
  EXPECT_EQ(stats.verify_mismatches, 0u);
  EXPECT_EQ(stats.sessions, static_cast<std::size_t>(kClients));
  EXPECT_EQ(stats.cache_misses, 1u);  // all clients share one resident scene
}

TEST(RenderService, BackpressureRejectsWithTypedErrorWhenFull) {
  std::promise<void> entered;
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::atomic<bool> signalled{false};
  ServiceConfig config = small_service_config();
  config.workers = 1;
  config.queue_capacity = 2;
  config.verify = false;
  RenderService service(config, [&](const std::string& key) {
    if (!signalled.exchange(true)) entered.set_value();
    gate_future.wait();
    return make_random_cloud(64, static_cast<unsigned>(key.size()));
  });

  const Camera camera = make_camera(64, 48);
  // r1 is dequeued by the single worker, which then blocks inside the scene
  // load; r2/r3 fill the bounded queue deterministically.
  auto r1 = service.submit(RenderRequest{"scene", camera, 0});
  entered.get_future().wait();
  auto r2 = service.submit(RenderRequest{"scene", camera, 0});
  auto r3 = service.submit(RenderRequest{"scene", camera, 0});
  auto r4 = service.try_submit(RenderRequest{"scene", camera, 0});

  RenderResponse rejected = r4.get();  // resolves immediately, queue untouched
  EXPECT_EQ(rejected.status, ServiceStatus::kQueueFull);
  EXPECT_NE(rejected.error.find("queue full"), std::string::npos);

  gate.set_value();
  EXPECT_TRUE(r1.get().ok());
  EXPECT_TRUE(r2.get().ok());
  EXPECT_TRUE(r3.get().ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests_rejected, 1u);
  EXPECT_EQ(stats.requests_completed, 3u);
  EXPECT_EQ(stats.peak_queue_depth, 2u);
}

TEST(RenderService, SameSessionRequestsBatchOntoOneDispatch) {
  std::promise<void> entered;
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  std::atomic<bool> signalled{false};
  ServiceConfig config = small_service_config();
  config.workers = 1;
  config.verify = false;
  RenderService service(config, [&](const std::string& key) {
    if (!signalled.exchange(true)) entered.set_value();
    gate_future.wait();
    return make_random_cloud(64, static_cast<unsigned>(key.size()));
  });

  const Camera camera = make_camera(64, 48);
  auto r1 = service.submit(RenderRequest{"scene", camera, 9});
  entered.get_future().wait();  // worker took [r1] and is loading
  auto r2 = service.submit(RenderRequest{"scene", camera, 9});
  auto r3 = service.submit(RenderRequest{"scene", camera, 9});
  auto r4 = service.submit(RenderRequest{"scene", camera, 9});
  gate.set_value();
  for (auto* f : {&r1, &r2, &r3, &r4}) EXPECT_TRUE(f->get().ok());

  // Deterministic schedule: batch 1 = [r1]; r2..r4 queue behind the busy
  // session and dispatch as one batch once it frees.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.max_batch, 3u);
  EXPECT_EQ(stats.batched_requests, 3u);
}

TEST(RenderService, CacheEvictionUnderCapacityPressure) {
  std::atomic<int> loads{0};
  ServiceConfig config = small_service_config();
  config.workers = 1;
  config.scene_capacity = 1;
  config.verify = false;
  RenderService service(config, [&](const std::string& key) {
    ++loads;
    return make_random_cloud(64, static_cast<unsigned>(key.size()));
  });

  const Camera camera = make_camera(64, 48);
  // Alternating scenes with capacity 1: every switch reloads.
  EXPECT_TRUE(service.submit(RenderRequest{"a", camera, 0}).get().ok());
  EXPECT_TRUE(service.submit(RenderRequest{"bb", camera, 0}).get().ok());
  EXPECT_TRUE(service.submit(RenderRequest{"a", camera, 0}).get().ok());
  EXPECT_EQ(loads.load(), 3);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_evictions, 2u);
  EXPECT_EQ(stats.cache_misses, 3u);
}

TEST(RenderService, SessionCapEvictsIdleStreamsNotMemory) {
  // A stream of unique session ids must not grow the resident session set
  // beyond the cap: stale idle sessions are evicted (and cold-start on a
  // comeback), so session scratch cannot exhaust memory.
  ServiceConfig config = small_service_config();
  config.workers = 1;
  config.session_capacity = 2;
  config.verify = false;
  RenderService service(config, fixed_cloud_loader());
  const GaussianCloud cloud = fixed_cloud_loader()("scene");
  const Camera camera = make_camera(64, 48);
  const Framebuffer reference = sequential_reference(cloud, camera, config);

  for (std::uint64_t s = 1; s <= 6; ++s) {
    RenderResponse response = service.submit(RenderRequest{"scene", camera, s}).get();
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(max_abs_diff(reference, response.image), 0.0f) << "session " << s;
  }
  const ServiceStats stats = service.stats();
  EXPECT_LE(stats.sessions, 2u);
  EXPECT_EQ(stats.sessions_evicted, 4u);
}

TEST(RenderService, InvalidRequestsResolveWithTypedErrors) {
  RenderService service(small_service_config(), fixed_cloud_loader());

  // Empty scene id.
  RenderResponse empty_scene = service.submit(RenderRequest{"", make_camera(64, 48), 0}).get();
  EXPECT_EQ(empty_scene.status, ServiceStatus::kInvalidRequest);
  EXPECT_NE(empty_scene.error.find("scene"), std::string::npos);

  // Non-finite camera pose.
  Mat4 pose = look_at({0.0f, 0.0f, -5.0f}, {0.0f, 0.0f, 0.0f});
  pose.m[0][3] = std::numeric_limits<float>::quiet_NaN();
  const Camera nan_camera(64, 48, 60.0f, 60.0f, 32.0f, 24.0f, pose);
  RenderResponse nan_pose = service.submit(RenderRequest{"scene", nan_camera, 0}).get();
  EXPECT_EQ(nan_pose.status, ServiceStatus::kInvalidRequest);
  EXPECT_NE(nan_pose.error.find("non-finite"), std::string::npos);

  // Image size beyond the service limit.
  const Camera huge = make_camera(kMaxImageDim + 1, 64);
  RenderResponse oversize = service.submit(RenderRequest{"scene", huge, 0}).get();
  EXPECT_EQ(oversize.status, ServiceStatus::kInvalidRequest);
  EXPECT_NE(oversize.error.find("exceeds"), std::string::npos);

  // The service keeps serving valid requests afterwards.
  EXPECT_TRUE(service.submit(RenderRequest{"scene", make_camera(64, 48), 0}).get().ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests_rejected, 3u);
  EXPECT_EQ(stats.requests_completed, 1u);
}

TEST(RenderService, FastTierRendersSortlessAndPassesVerifyGate) {
  const ServiceConfig config = small_service_config();  // verify gate on
  RenderService service(config, fixed_cloud_loader());
  const GaussianCloud cloud = fixed_cloud_loader()("scene");
  const Camera camera = make_camera(112, 80);

  RenderRequest request{"scene", camera, 0};
  request.fast_tier = true;
  RenderResponse response = service.submit(request).get();
  ASSERT_TRUE(response.ok()) << response.error;

  // Bit-identical to a one-shot render under the same sortless config, and
  // structurally sortless: zero sort pairs in the shipped counters.
  GsTgConfig reference = config.render;
  reference.temporal = TemporalMode::kOff;
  reference.pipeline = PipelineMode::kSortless;
  const RenderResult oneshot = render_gstg(cloud, camera, reference);
  EXPECT_EQ(max_abs_diff(oneshot.image, response.image), 0.0f);
  EXPECT_EQ(response.counters.sort_pairs, 0u);

  // Lossy by design: the fast tier differs from the exact tier's image.
  const Framebuffer exact = sequential_reference(cloud, camera, config);
  EXPECT_GT(max_abs_diff(exact, response.image), 0.0f);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fast_tier_completed, 1u);
  EXPECT_EQ(stats.verify_mismatches, 0u);
}

TEST(RenderService, FastTierWithSessionIsATypedRejection) {
  RenderService service(small_service_config(), fixed_cloud_loader());

  RenderRequest request{"scene", make_camera(64, 48), 9};
  request.fast_tier = true;
  RenderResponse rejected = service.submit(request).get();
  EXPECT_EQ(rejected.status, ServiceStatus::kInvalidRequest);
  EXPECT_NE(rejected.error.find("fast_tier"), std::string::npos);
  EXPECT_EQ(service.stats().requests_rejected, 1u);

  // The same request without the session stream is served.
  request.session = 0;
  EXPECT_TRUE(service.submit(request).get().ok());
}

TEST(RenderService, BrokenSceneIsATypedPerClientError) {
  // A garbled PLY on disk: the client that asked for it gets a typed
  // kSceneLoadFailed with the PLY parser's message; other clients and the
  // process are unaffected.
  const std::string path = ::testing::TempDir() + "gstg_truncated.ply";
  {
    std::ofstream out(path, std::ios::binary);
    out << "ply\nformat binary_little_endian 1.0\nelement vertex abc\nend_header\n";
  }
  ServiceConfig config = small_service_config();
  RenderService service(config);  // default loader: real PLY + scene recipes

  RenderResponse broken = service.submit(RenderRequest{path, make_camera(64, 48), 0}).get();
  EXPECT_EQ(broken.status, ServiceStatus::kSceneLoadFailed);
  EXPECT_NE(broken.error.find("PLY"), std::string::npos);

  RenderResponse unknown =
      service.submit(RenderRequest{"no-such-scene", make_camera(64, 48), 0}).get();
  EXPECT_EQ(unknown.status, ServiceStatus::kSceneLoadFailed);

  // A real synthetic scene still renders in the same service instance.
  RenderResponse good = service.submit(RenderRequest{"train", make_camera(64, 48), 0}).get();
  EXPECT_TRUE(good.ok()) << good.error;
  std::remove(path.c_str());
}

TEST(RenderService, GarbledDatasetDirIsATypedPerClientError) {
  // A scene key naming a directory routes through the dataset loader
  // (dataset/load_scene.h). A garbled or unrecognisable directory must come
  // back as a typed kSceneLoadFailed carrying the DatasetError message —
  // never fall through to the synthetic-scene registry or kill the worker.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "gstg_garbled_dataset";
  std::filesystem::create_directories(dir);
  {
    // cameras.bin with a count promising more cameras than the payload has.
    std::ofstream out(dir / "cameras.bin", std::ios::binary);
    const std::uint64_t count = 5;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  ServiceConfig config = small_service_config();
  RenderService service(config);  // default loader: datasets + PLY + recipes

  RenderResponse garbled = service.submit(RenderRequest{dir.string(), make_camera(64, 48), 0}).get();
  EXPECT_EQ(garbled.status, ServiceStatus::kSceneLoadFailed);
  EXPECT_NE(garbled.error.find("dataset"), std::string::npos) << garbled.error;
  EXPECT_NE(garbled.error.find("cameras.bin"), std::string::npos) << garbled.error;

  // An existing directory with no recognisable model at all is also a typed
  // dataset error, not an "unknown scene" fall-through.
  const std::filesystem::path empty_dir =
      std::filesystem::path(::testing::TempDir()) / "gstg_empty_dataset";
  std::filesystem::create_directories(empty_dir);
  RenderResponse empty =
      service.submit(RenderRequest{empty_dir.string(), make_camera(64, 48), 0}).get();
  EXPECT_EQ(empty.status, ServiceStatus::kSceneLoadFailed);
  EXPECT_NE(empty.error.find("dataset"), std::string::npos) << empty.error;

  // The same service instance keeps serving good scenes.
  EXPECT_TRUE(service.submit(RenderRequest{"train", make_camera(64, 48), 0}).get().ok());
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(empty_dir);
}

TEST(RenderService, ShutdownRejectsNewRequestsAndDrainsQueued) {
  ServiceConfig config = small_service_config();
  config.verify = false;
  RenderService service(config, fixed_cloud_loader());
  const Camera camera = make_camera(64, 48);

  std::vector<std::future<RenderResponse>> queued;
  for (int i = 0; i < 6; ++i) queued.push_back(service.submit(RenderRequest{"scene", camera, 0}));
  service.shutdown();
  for (auto& future : queued) EXPECT_TRUE(future.get().ok());  // drained, not dropped

  RenderResponse after = service.submit(RenderRequest{"scene", camera, 0}).get();
  EXPECT_EQ(after.status, ServiceStatus::kShutdown);
  RenderResponse after_try = service.try_submit(RenderRequest{"scene", camera, 0}).get();
  EXPECT_EQ(after_try.status, ServiceStatus::kShutdown);
}

TEST(RenderService, ServiceEnvKnobsRejectMalformedValues) {
  ASSERT_EQ(setenv("GSTG_SERVICE_QUEUE", "64garbage", 1), 0);
  EXPECT_THROW((void)ServiceConfig{}.resolved(), std::invalid_argument);
  ASSERT_EQ(setenv("GSTG_SERVICE_QUEUE", "0", 1), 0);
  EXPECT_THROW((void)ServiceConfig{}.resolved(), std::invalid_argument);
  ASSERT_EQ(setenv("GSTG_SERVICE_QUEUE", "8", 1), 0);
  EXPECT_EQ(ServiceConfig{}.resolved().queue_capacity, 8u);
  ASSERT_EQ(unsetenv("GSTG_SERVICE_QUEUE"), 0);
}

TEST(ServiceStatus, NamesAreStable) {
  EXPECT_STREQ(to_string(ServiceStatus::kOk), "ok");
  EXPECT_STREQ(to_string(ServiceStatus::kQueueFull), "queue_full");
  EXPECT_STREQ(to_string(ServiceStatus::kSceneLoadFailed), "scene_load_failed");
}

}  // namespace
}  // namespace gstg
