// SceneCache: load-once semantics (single-flight under concurrency), LRU
// eviction that never invalidates in-flight users (refcounted clouds), and
// typed, retryable load failures.
#include "service/scene_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gaussian/ply_io.h"
#include "test_helpers.h"

namespace gstg {
namespace {

using testutil::make_random_cloud;

SceneCache::Loader counting_loader(std::atomic<int>& loads) {
  return [&loads](const std::string& key) {
    ++loads;
    return make_random_cloud(64, static_cast<unsigned>(key.size()));
  };
}

TEST(SceneCache, CapacityZeroThrows) { EXPECT_THROW(SceneCache(0), std::invalid_argument); }

TEST(SceneCache, HitMissEviction) {
  std::atomic<int> loads{0};
  SceneCache cache(1, counting_loader(loads));

  const auto a1 = cache.acquire("a");
  EXPECT_EQ(loads.load(), 1);
  const auto a2 = cache.acquire("a");
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ(a1.get(), a2.get());  // the same refcounted cloud

  const auto b = cache.acquire("b");  // capacity 1: evicts "a"
  EXPECT_EQ(loads.load(), 2);
  const auto a3 = cache.acquire("a");  // reload
  EXPECT_EQ(loads.load(), 3);

  const SceneCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.resident, 1u);
}

TEST(SceneCache, EvictionKeepsInFlightUsersAlive) {
  std::atomic<int> loads{0};
  SceneCache cache(1, counting_loader(loads));

  const std::shared_ptr<const GaussianCloud> a = cache.acquire("a");
  const std::size_t a_size = a->size();
  (void)cache.acquire("b");  // evicts "a" from the cache...
  EXPECT_EQ(a->size(), a_size);  // ...but our reference keeps it valid
  EXPECT_GE(a.use_count(), 1);
}

TEST(SceneCache, LruKeepsRecentlyUsedResident) {
  std::atomic<int> loads{0};
  SceneCache cache(2, counting_loader(loads));
  (void)cache.acquire("a");
  (void)cache.acquire("b");
  (void)cache.acquire("a");  // refresh "a": the LRU victim must be "b"
  (void)cache.acquire("c");  // evicts "b"
  (void)cache.acquire("a");  // still resident
  EXPECT_EQ(loads.load(), 3);
}

TEST(SceneCache, SingleFlightConcurrentAcquires) {
  std::atomic<int> loads{0};
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  SceneCache cache(2, [&](const std::string&) {
    ++loads;
    gate_future.wait();  // hold the load so both threads overlap on it
    return make_random_cloud(32, 5);
  });

  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      const auto cloud = cache.acquire("shared");
      EXPECT_EQ(cloud->size(), 32u);
      ++done;
    });
  }
  // Give every thread time to reach the cache before releasing the load.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.set_value();
  for (auto& t : threads) t.join();

  EXPECT_EQ(done.load(), 4);
  EXPECT_EQ(loads.load(), 1);  // load-once: one flight served all four
  const SceneCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
}

TEST(SceneCache, LoadFailureIsTypedAndRetryable) {
  std::atomic<int> loads{0};
  SceneCache cache(2, [&](const std::string&) -> GaussianCloud {
    if (++loads == 1) throw PlyError("synthetic failure");
    return make_random_cloud(16, 3);
  });

  EXPECT_THROW((void)cache.acquire("flaky"), PlyError);
  // Failures are not cached: the next acquire retries and succeeds.
  const auto cloud = cache.acquire("flaky");
  EXPECT_EQ(cloud->size(), 16u);
  EXPECT_EQ(loads.load(), 2);
}

TEST(SceneCache, DefaultLoaderSyntheticSceneAndUnknownKey) {
  // Synthetic scene names resolve through the scene recipes...
  const GaussianCloud train = load_scene_or_ply("train");
  EXPECT_GT(train.size(), 0u);
  // ...unknown names and missing PLY paths are typed errors.
  EXPECT_THROW((void)load_scene_or_ply("no-such-scene"), std::invalid_argument);
  EXPECT_THROW((void)load_scene_or_ply("/nonexistent/dir/cloud.ply"), PlyError);
}

}  // namespace
}  // namespace gstg
