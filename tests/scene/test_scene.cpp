#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "scene/scene.h"

namespace gstg {
namespace {

// Tiny scale so scene generation stays fast in unit tests.
RunScale tiny_scale() { return RunScale{.resolution_divisor = 8, .gaussian_divisor = 256}; }

TEST(SceneRegistry, TableMatchesPaperTableII) {
  const auto& scenes = all_scenes();
  ASSERT_EQ(scenes.size(), 6u);
  EXPECT_EQ(scene_info("train").paper_width, 1959);
  EXPECT_EQ(scene_info("train").paper_height, 1090);
  EXPECT_EQ(scene_info("truck").paper_width, 1957);
  EXPECT_EQ(scene_info("drjohnson").dataset, "Deep Blending");
  EXPECT_EQ(scene_info("playroom").paper_height, 832);
  EXPECT_EQ(scene_info("rubble").paper_width, 4608);
  EXPECT_EQ(scene_info("residence").paper_width, 5472);
  EXPECT_EQ(scene_info("residence").paper_height, 3648);
  EXPECT_EQ(scene_info("drjohnson").kind, SceneKind::kIndoorRoom);
  EXPECT_EQ(scene_info("rubble").kind, SceneKind::kAerial);
  EXPECT_EQ(scene_info("train").kind, SceneKind::kOutdoorStreet);
}

TEST(SceneRegistry, AlgorithmScenesAreFirstFour) {
  const auto& four = algorithm_scenes();
  ASSERT_EQ(four.size(), 4u);
  EXPECT_EQ(four[0].name, "train");
  EXPECT_EQ(four[3].name, "playroom");
}

TEST(SceneRegistry, UnknownNameThrows) {
  EXPECT_THROW(scene_info("atlantis"), std::invalid_argument);
}

TEST(SceneGen, DeterministicAcrossCalls) {
  const Scene a = generate_scene("train", tiny_scale());
  const Scene b = generate_scene("train", tiny_scale());
  ASSERT_EQ(a.cloud.size(), b.cloud.size());
  for (std::size_t i = 0; i < a.cloud.size(); i += 97) {
    EXPECT_EQ(a.cloud.position(i), b.cloud.position(i));
    EXPECT_EQ(a.cloud.scale(i), b.cloud.scale(i));
    EXPECT_EQ(a.cloud.opacity(i), b.cloud.opacity(i));
  }
}

TEST(SceneGen, DifferentScenesDiffer) {
  const Scene a = generate_scene("train", tiny_scale());
  const Scene b = generate_scene("truck", tiny_scale());
  // Same archetype, different seeds and counts.
  EXPECT_NE(a.cloud.size(), b.cloud.size());
}

TEST(SceneGen, RespectsScaleDivisors) {
  const Scene small = generate_scene("train", RunScale{8, 256});
  const Scene larger = generate_scene("train", RunScale{4, 64});
  EXPECT_LT(small.cloud.size(), larger.cloud.size());
  EXPECT_EQ(small.render_width, 1959 / 8);
  EXPECT_EQ(larger.render_width, 1959 / 4);
  // Count tracks paper_gaussians / divisor within recipe rounding.
  const double expected = 1'030'000.0 / 256.0;
  EXPECT_NEAR(static_cast<double>(small.cloud.size()), expected, 0.15 * expected);
}

TEST(SceneGen, RejectsBadScale) {
  EXPECT_THROW(generate_scene("train", RunScale{0, 16}), std::invalid_argument);
  EXPECT_THROW(generate_scene("train", RunScale{4, 0}), std::invalid_argument);
}

class AllScenesTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AllScenesTest, GeneratesValidCloudAndCamera) {
  const Scene scene = generate_scene(GetParam(), tiny_scale());
  EXPECT_GT(scene.cloud.size(), 1000u);
  EXPECT_EQ(scene.camera.width(), scene.render_width);
  EXPECT_EQ(scene.camera.height(), scene.render_height);

  // All parameters within valid domains.
  std::size_t in_front = 0;
  for (std::size_t i = 0; i < scene.cloud.size(); ++i) {
    const Vec3 s = scene.cloud.scale(i);
    ASSERT_GT(s.x, 0.0f);
    ASSERT_GT(s.y, 0.0f);
    ASSERT_GT(s.z, 0.0f);
    const float o = scene.cloud.opacity(i);
    ASSERT_GE(o, 0.0f);
    ASSERT_LE(o, 1.0f);
    if (scene.camera.to_view(scene.cloud.position(i)).z > 0.2f) ++in_front;
  }
  // The evaluation camera actually sees a large share of the scene.
  EXPECT_GT(in_front, scene.cloud.size() / 4);
}

TEST_P(AllScenesTest, SplatsAreAnisotropic) {
  const Scene scene = generate_scene(GetParam(), tiny_scale());
  std::size_t anisotropic = 0;
  for (std::size_t i = 0; i < scene.cloud.size(); ++i) {
    const Vec3 s = scene.cloud.scale(i);
    const float mx = std::max({s.x, s.y, s.z});
    const float mn = std::min({s.x, s.y, s.z});
    if (mx > 2.0f * mn) ++anisotropic;
  }
  // Surface-aligned splats dominate: most have a thin normal direction.
  EXPECT_GT(anisotropic, scene.cloud.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(Scenes, AllScenesTest,
                         ::testing::Values("train", "truck", "drjohnson", "playroom", "rubble",
                                           "residence"));

TEST(OrbitCameras, CountAndDistinctPoses) {
  const Scene scene = generate_scene("playroom", tiny_scale());
  const auto cams = orbit_cameras(scene, 8);
  ASSERT_EQ(cams.size(), 8u);
  std::set<float> xs;
  for (const Camera& c : cams) xs.insert(c.position().x);
  EXPECT_GT(xs.size(), 6u);  // distinct eye positions
  EXPECT_THROW(orbit_cameras(scene, 0), std::invalid_argument);
}

// The typed-error contract (lint rule R3): operational failures throw the
// layer's error class, caller misuse stays std::invalid_argument. Both are
// load-bearing — the service maps unknown scene *names* to a client-facing
// rejection via invalid_argument, while SceneError marks corrupted state.
TEST(SceneErrors, UnknownSceneKindThrowsTypedError) {
  SceneInfo info = scene_info("train");
  info.kind = static_cast<SceneKind>(99);
  EXPECT_THROW(generate_scene(info, tiny_scale()), SceneError);
  try {
    generate_scene(info, tiny_scale());
    FAIL() << "expected SceneError";
  } catch (const std::runtime_error& e) {
    // Derives from runtime_error with the layer prefix.
    EXPECT_EQ(std::string(e.what()).rfind("scene: ", 0), 0u) << e.what();
  }
}

TEST(SceneErrors, UnknownSceneNameStaysInvalidArgument) {
  EXPECT_THROW(scene_info("atlantis"), std::invalid_argument);
}

TEST(OrbitCameras, FirstFrameNearEvaluationCamera) {
  const Scene scene = generate_scene("train", tiny_scale());
  const auto cams = orbit_cameras(scene, 4);
  const Vec3 a = cams[0].position();
  const Vec3 b = scene.camera.position();
  EXPECT_NEAR(a.x, b.x, 1e-3f);
  EXPECT_NEAR(a.z, b.z, 1e-3f);
}

}  // namespace
}  // namespace gstg
