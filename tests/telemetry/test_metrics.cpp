// MetricsRegistry (telemetry/metrics.h): counters, log-bucketed latency
// histograms, bounded gauge series, and the JSON snapshot shape.
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace gstg::telemetry {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::global().reset(); }
  void TearDown() override { MetricsRegistry::global().reset(); }
};

TEST_F(MetricsTest, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry& m = MetricsRegistry::global();
  EXPECT_EQ(m.counter("never.recorded"), 0u);
  m.add_counter("requests");
  m.add_counter("requests", 4);
  EXPECT_EQ(m.counter("requests"), 5u);
}

TEST_F(MetricsTest, LatencyHistogramRecordsQuantiles) {
  MetricsRegistry& m = MetricsRegistry::global();
  for (int i = 1; i <= 100; ++i) m.record_latency("render_ms", static_cast<double>(i));

  const LatencyHistogram hist = m.latency("render_ms");
  EXPECT_EQ(hist.total(), 100u);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 100.0);
  EXPECT_NEAR(hist.mean(), 50.5, 1e-9);
  // Log-bucketed with 5% growth: quantiles land within one bucket (<=5%
  // relative) of the exact rank values.
  EXPECT_NEAR(hist.quantile(0.50), 50.0, 50.0 * 0.05);
  EXPECT_NEAR(hist.quantile(0.95), 95.0, 95.0 * 0.05);
  EXPECT_NEAR(hist.quantile(0.99), 99.0, 99.0 * 0.05);
  // Unknown name: empty histogram, not a throw.
  EXPECT_EQ(m.latency("never.recorded").total(), 0u);
}

TEST_F(MetricsTest, GaugeSeriesIsBoundedDropOldest) {
  MetricsRegistry& m = MetricsRegistry::global();
  const std::size_t n = MetricsRegistry::kGaugeCapacity + 100;
  for (std::size_t i = 0; i < n; ++i) m.sample_gauge("depth", static_cast<double>(i));

  const std::vector<GaugeSample> series = m.gauge("depth");
  ASSERT_EQ(series.size(), MetricsRegistry::kGaugeCapacity);
  // Oldest 100 samples were dropped; order is preserved.
  EXPECT_DOUBLE_EQ(series.front().value, 100.0);
  EXPECT_DOUBLE_EQ(series.back().value, static_cast<double>(n - 1));
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].t_ns, series[i - 1].t_ns);
    EXPECT_DOUBLE_EQ(series[i].value, series[i - 1].value + 1.0);
  }
}

TEST_F(MetricsTest, SnapshotJsonCoversAllThreeKinds) {
  MetricsRegistry& m = MetricsRegistry::global();
  m.add_counter("snap.requests", 7);
  m.record_latency("snap.latency_ms", 12.5);
  m.sample_gauge("snap.depth", 3.0);

  const std::string json = m.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"snap.requests\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"snap.latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"snap.depth\""), std::string::npos);
}

TEST_F(MetricsTest, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry& m = MetricsRegistry::global();
  m.add_counter("zebra");
  m.add_counter("alpha");
  const std::string json = m.snapshot_json();
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zebra\""));
}

TEST_F(MetricsTest, ResetDropsEverything) {
  MetricsRegistry& m = MetricsRegistry::global();
  m.add_counter("gone");
  m.record_latency("gone_ms", 1.0);
  m.sample_gauge("gone_depth", 1.0);
  m.reset();
  EXPECT_EQ(m.counter("gone"), 0u);
  EXPECT_EQ(m.latency("gone_ms").total(), 0u);
  EXPECT_TRUE(m.gauge("gone_depth").empty());
}

}  // namespace
}  // namespace gstg::telemetry
