// The typed-error contract of the telemetry layer (lint rule R3): trace and
// metrics export failures throw TelemetryError (telemetry/error.h) — derived
// from std::runtime_error with the "telemetry: " prefix — never a raw
// std::runtime_error.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "telemetry/error.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gstg::telemetry {
namespace {

TEST(TelemetryErrors, TraceWriteToUnopenablePathThrowsTyped) {
  EXPECT_THROW(TraceSession::global().write("/nonexistent_gstg_dir/trace.json"),
               TelemetryError);
}

TEST(TelemetryErrors, MetricsWriteToUnopenablePathThrowsTyped) {
  EXPECT_THROW(MetricsRegistry::global().write_json("/nonexistent_gstg_dir/metrics.json"),
               TelemetryError);
}

TEST(TelemetryErrors, DerivesFromRuntimeErrorWithPrefix) {
  try {
    TraceSession::global().write("/nonexistent_gstg_dir/trace.json");
    FAIL() << "expected TelemetryError";
  } catch (const std::runtime_error& e) {
    // Catchable as runtime_error (the bench/CLI catch sites keep working)
    // and identifiable by the layer prefix.
    EXPECT_EQ(std::string(e.what()).rfind("telemetry: ", 0), 0u) << e.what();
  }
}

}  // namespace
}  // namespace gstg::telemetry
