// Telemetry is observational: RenderCounters and the framebuffer must be
// bit-identical with tracing on vs. off, in exact mode and across the
// multi-threaded path. This is the invariant that makes it safe to leave
// GSTG_SPAN instrumentation in every pipeline stage.
#include "core/renderer.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "telemetry/trace.h"
#include "test_helpers.h"

namespace gstg {
namespace {

using testutil::make_camera;
using testutil::make_random_cloud;

bool images_identical(const Framebuffer& a, const Framebuffer& b) {
  return a.width() == b.width() && a.height() == b.height() && max_abs_diff(a, b) == 0.0f;
}

bool counters_equal(const RenderCounters& a, const RenderCounters& b) {
  return a.visible_gaussians == b.visible_gaussians && a.tile_pairs == b.tile_pairs &&
         a.sort_pairs == b.sort_pairs && a.bitmask_tests == b.bitmask_tests &&
         a.filter_checks == b.filter_checks && a.alpha_computations == b.alpha_computations &&
         a.blend_ops == b.blend_ops && a.total_pixels == b.total_pixels;
}

void expect_tracing_invisible(const GsTgConfig& config) {
  const GaussianCloud cloud = make_random_cloud(900, 21);
  const Camera camera = make_camera();

  telemetry::TraceSession::global().stop();
  const RenderResult off = render_gstg(cloud, camera, config);

  telemetry::TraceSession::global().start();
  const RenderResult on = render_gstg(cloud, camera, config);
  telemetry::TraceSession::global().stop();

  EXPECT_TRUE(images_identical(off.image, on.image)) << "framebuffer diverged under tracing";
  EXPECT_TRUE(counters_equal(off.counters, on.counters)) << "counters diverged under tracing";
}

TEST(TraceDeterminism, ExactModeBitIdenticalTracingOnVsOff) {
  GsTgConfig config;
  config.threads = 1;
  expect_tracing_invisible(config);
}

TEST(TraceDeterminism, MultiThreadedBitIdenticalTracingOnVsOff) {
  GsTgConfig config;
  config.threads = 4;
  expect_tracing_invisible(config);
}

TEST(TraceDeterminism, ConfigTraceFlagLeavesOutputBitIdentical) {
  const GaussianCloud cloud = make_random_cloud(600, 5);
  const Camera camera = make_camera();

  telemetry::TraceSession::global().stop();
  GsTgConfig plain;
  plain.threads = 2;
  const RenderResult reference = render_gstg(cloud, camera, plain);

  GsTgConfig traced = plain;
  traced.trace = true;  // Renderer ctor starts the global session
  const Renderer renderer(traced);
  FrameContext ctx;
  renderer.render(cloud, camera, ctx);
  EXPECT_TRUE(telemetry::TraceSession::global().active());
  telemetry::TraceSession::global().stop();

  EXPECT_TRUE(images_identical(reference.image, ctx.image));
  EXPECT_TRUE(counters_equal(reference.counters, ctx.counters));
  EXPECT_GT(telemetry::TraceSession::global().stats().recorded, 0u)
      << "config.trace produced no spans";
}

}  // namespace
}  // namespace gstg
