// Concurrency contract for the trace rings and the metrics registry, run
// under TSan in CI (the `telemetry` label is part of the tsan preset's test
// filter). Many producer threads emit spans/counters while the main thread
// snapshots stats mid-flight; the final event count must equal exactly what
// the producers published (recorded + dropped == emitted).
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace gstg::telemetry {
namespace {

TEST(TraceConcurrent, ManyThreadsEmitWhileMainSnapshots) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kEventsPerThread = 5000;

  TraceOptions options;
  options.ring_capacity = 1024;  // force overflow so the drop path races too
  TraceSession& session = TraceSession::global();
  session.start(options);

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&go, t] {
      set_thread_name("stress-" + std::to_string(t));
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < kEventsPerThread; ++i) {
        switch (i % 3) {
          case 0: {
            GSTG_SPAN("stress_span");
            break;
          }
          case 1:
            emit_counter("stress_counter", static_cast<double>(i));
            break;
          default:
            emit_instant("stress_instant");
            break;
        }
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Concurrent reads while producers are mid-push: stats() must stay
  // race-free and never observe a half-written slot (acquire on count).
  for (int i = 0; i < 100; ++i) {
    const TraceStats mid = session.stats();
    EXPECT_LE(mid.recorded, kThreads * options.ring_capacity + options.ring_capacity);
  }

  for (std::thread& w : workers) w.join();
  session.stop();

  const TraceStats stats = session.stats();
  // Every emitted event was either recorded or counted as dropped — the
  // never-block guarantee means none can be silently lost. The main thread
  // emitted nothing, so only worker events (and prior main-ring slots
  // cleared by start()) are in play.
  EXPECT_EQ(stats.recorded + stats.dropped, kThreads * kEventsPerThread);
  EXPECT_GE(stats.threads, kThreads);
  EXPECT_GT(stats.dropped, 0u);  // capacity was sized to overflow

  // The export itself must also be clean against the stopped rings.
  const std::string path = ::testing::TempDir() + "gstg_trace_stress.json";
  EXPECT_GT(session.write(path), 0u);
  std::remove(path.c_str());
}

TEST(TraceConcurrent, MetricsRegistryParallelWriters) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 2000;

  MetricsRegistry& metrics = MetricsRegistry::global();
  metrics.reset();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&metrics] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        metrics.add_counter("stress.requests");
        metrics.record_latency("stress.latency_ms", 1.0 + static_cast<double>(i % 50));
        metrics.sample_gauge("stress.depth", static_cast<double>(i % 16));
      }
    });
  }
  // Concurrent snapshots while the writers run.
  for (int i = 0; i < 50; ++i) {
    const std::string json = metrics.snapshot_json();
    EXPECT_FALSE(json.empty());
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(metrics.counter("stress.requests"), kThreads * kOpsPerThread);
  EXPECT_EQ(metrics.latency("stress.latency_ms").total(), kThreads * kOpsPerThread);
  EXPECT_EQ(metrics.gauge("stress.depth").size(), MetricsRegistry::kGaugeCapacity);
  metrics.reset();
}

}  // namespace
}  // namespace gstg::telemetry
