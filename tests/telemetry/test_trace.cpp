// Trace collector contract (telemetry/trace.h): bounded rings drop-and-count
// on overflow (never block, never grow mid-session), disabled emission is a
// no-op, and the exported Chrome trace JSON has matched B/E pairs and the
// session's metadata.
#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace gstg::telemetry {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::string::size_type at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Trace, DisabledEmissionIsNoop) {
  TraceSession& session = TraceSession::global();
  session.stop();
  ASSERT_FALSE(enabled());

  const TraceStats before = session.stats();
  emit_span("ignored", 0, 10);
  emit_async_span("ignored", 0, 10);
  emit_counter("ignored", 1.0);
  emit_instant("ignored");
  { GSTG_SPAN("ignored_scope"); }
  const TraceStats after = session.stats();
  EXPECT_EQ(before.recorded, after.recorded);
  EXPECT_EQ(before.dropped, after.dropped);
}

TEST(Trace, RecordsSpansCountersInstants) {
  TraceSession& session = TraceSession::global();
  session.start();
  {
    GSTG_SPAN("outer");
    { GSTG_SPAN("inner"); }
  }
  emit_counter("depth", 3.0);
  emit_instant("marker");
  session.stop();

  const TraceStats stats = session.stats();
  EXPECT_EQ(stats.recorded, 4u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GE(stats.threads, 1u);
}

TEST(Trace, OverflowDropsAndCounts) {
  TraceOptions options;
  options.ring_capacity = 16;
  TraceSession& session = TraceSession::global();
  session.start(options);
  for (int i = 0; i < 100; ++i) {
    emit_span("s", static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i + 1));
  }
  session.stop();

  const TraceStats stats = session.stats();
  EXPECT_EQ(stats.recorded, 16u);
  EXPECT_EQ(stats.dropped, 84u);

  // A restart clears both the events and the drop count.
  session.start(options);
  session.stop();
  const TraceStats cleared = session.stats();
  EXPECT_EQ(cleared.recorded, 0u);
  EXPECT_EQ(cleared.dropped, 0u);
}

TEST(Trace, NowNsIsMonotonic) {
  std::uint64_t last = now_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t t = now_ns();
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST(Trace, WriteEmitsMatchedPairsAndMetadata) {
  const std::string path = ::testing::TempDir() + "gstg_trace_test.json";
  TraceOptions options;
  options.process_name = "trace-test";
  TraceSession& session = TraceSession::global();
  session.start(options);
  set_thread_name("tester");
  {
    GSTG_SPAN("frame");
    { GSTG_SPAN("preprocess"); }
    { GSTG_SPAN("sort_groups"); }
  }
  emit_counter("queue_depth", 2.0);
  emit_instant("frame_end");
  session.stop();

  const std::size_t written = session.write(path);
  EXPECT_EQ(written, 8u);  // 3 spans x B+E, one C, one i

  const std::string json = read_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"E\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"C\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"i\""), 1u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("trace-test"), std::string::npos);
  EXPECT_NE(json.find("tester"), std::string::npos);
  // The nested B/E stream must open the outer span before the inner ones.
  EXPECT_LT(json.find("\"name\": \"frame\", \"ph\": \"B\""),
            json.find("\"name\": \"preprocess\", \"ph\": \"B\""));
}

TEST(Trace, AsyncSpansExportAsMatchedPairsWithUniqueIds) {
  const std::string path = ::testing::TempDir() + "gstg_trace_async_test.json";
  TraceSession& session = TraceSession::global();
  session.start();
  // Two overlapping waits plus a scoped span between their endpoints — the
  // shape that breaks B/E nesting and motivated the async kind.
  const std::uint64_t t0 = now_ns();
  { GSTG_SPAN("render"); }
  const std::uint64_t t1 = now_ns();
  emit_async_span("queue_wait", t0, t1);
  emit_async_span("queue_wait", t0, now_ns());
  emit_async_span("clamped", t1, t1 - 1);  // end before begin clamps to zero length
  session.stop();

  const std::size_t written = session.write(path);
  EXPECT_EQ(written, 8u);  // 1 span x B+E, 3 async x b+e

  const std::string json = read_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"b\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"e\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"cat\": \"gstg\""), 6u);
  // Each pair gets its own id so Chrome/Perfetto can match overlapping
  // same-name intervals.
  EXPECT_EQ(count_occurrences(json, "\"id\": 0,"), 2u);
  EXPECT_EQ(count_occurrences(json, "\"id\": 1,"), 2u);
  EXPECT_EQ(count_occurrences(json, "\"id\": 2,"), 2u);
}

TEST(Trace, WriteToUnopenablePathThrows) {
  TraceSession& session = TraceSession::global();
  session.start();
  session.stop();
  EXPECT_THROW(session.write("/nonexistent-dir-gstg/trace.json"), std::runtime_error);
}

TEST(Trace, StopAndWriteWithoutPathIsNoop) {
  TraceSession& session = TraceSession::global();
  session.start();  // default options: no path
  { GSTG_SPAN("s"); }
  EXPECT_EQ(session.stop_and_write(), 0u);
}

}  // namespace
}  // namespace gstg::telemetry
