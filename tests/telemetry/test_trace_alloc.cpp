// Zero-steady-state-allocation guarantee with tracing ENABLED: after a
// thread's ring exists and the renderer's FrameContext is warm, recording
// spans must not allocate. Companion to tests/core/test_renderer.cpp's
// SteadyStateAllocatesNothing, which covers the same render path with
// tracing off; the counter idiom (and the GCC pragma rationale) is shared.
#include "core/renderer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "telemetry/trace.h"
#include "test_helpers.h"

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gstg {
namespace {

using testutil::make_camera;
using testutil::make_random_cloud;

TEST(TraceAlloc, SteadyStateSpanRecordingDoesNotAllocate) {
  telemetry::TraceSession::global().start();

  // Warm: the first event allocates this thread's ring; nothing after may.
  { GSTG_SPAN("warm"); }
  telemetry::emit_counter("warm_counter", 1.0);
  telemetry::emit_instant("warm_instant");

  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 10000; ++i) {
    GSTG_SPAN("steady");
    telemetry::emit_counter("steady_counter", static_cast<double>(i));
    telemetry::emit_instant("steady_instant");
  }
  const std::size_t after = g_alloc_count.load();
  telemetry::TraceSession::global().stop();
  EXPECT_EQ(after - before, 0u) << "span recording allocated in the steady state";
}

TEST(TraceAlloc, WarmRendererFrameWithTracingOnDoesNotAllocate) {
  telemetry::TraceSession::global().start();

  const GaussianCloud cloud = make_random_cloud(700, 99);
  const Camera camera = make_camera();
  GsTgConfig config;
  config.threads = 1;  // worker threads would allocate their own state
  const Renderer renderer(config);

  FrameContext ctx;
  renderer.render(cloud, camera, ctx);  // warm-up: buffers + this thread's ring
  renderer.render(cloud, camera, ctx);

  const std::size_t before = g_alloc_count.load();
  renderer.render(cloud, camera, ctx);
  const std::size_t after = g_alloc_count.load();
  telemetry::TraceSession::global().stop();
  EXPECT_EQ(after - before, 0u) << "instrumented render allocated with tracing on";
}

}  // namespace
}  // namespace gstg
