#include "sim/modules.h"

#include <gtest/gtest.h>

#include "sim/dram.h"

namespace gstg {
namespace {

TEST(HwConfig, TableIIIDefaults) {
  const HwConfig hw;
  EXPECT_DOUBLE_EQ(hw.frequency_hz, 1.0e9);
  EXPECT_EQ(hw.cores, 4);
  EXPECT_NEAR(hw.total_area_mm2(), 3.984, 1e-9);   // Table III total
  EXPECT_NEAR(hw.total_power_w(), 1.063, 1e-9);    // Table III total
  EXPECT_DOUBLE_EQ(hw.dram_bytes_per_cycle(), 51.2);
  EXPECT_EQ(hw.bytes_per_scalar, 2u);  // fp16 datapath
}

TEST(SortUnitCycles, QuicksortStreamsNLogNPasses) {
  const HwConfig hw;
  EXPECT_EQ(sort_unit_cycles(SorterKind::kQuicksort, 0, hw), 0.0);
  EXPECT_EQ(sort_unit_cycles(SorterKind::kQuicksort, 1, hw), 0.0);
  const double c256 = sort_unit_cycles(SorterKind::kQuicksort, 256, hw);
  const double c512 = sort_unit_cycles(SorterKind::kQuicksort, 512, hw);
  EXPECT_NEAR(c256, 256.0 * 8, 1e-6);
  EXPECT_GT(c512, 2.0 * c256);           // superlinear
  EXPECT_LT(c512, 2.5 * c256);           // but close to 2x(9/8)
}

TEST(SortUnitCycles, BitonicNetworkIsFasterPerList) {
  const HwConfig hw;
  // GSCore's 16-comparator bitonic network beats the streaming quicksort
  // unit on a per-list basis (that design point is why per-tile sorting is
  // viable for GSCore at all).
  for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
    EXPECT_LT(sort_unit_cycles(SorterKind::kBitonic, n, hw),
              sort_unit_cycles(SorterKind::kQuicksort, n, hw))
        << n;
  }
}

TEST(SortUnitCycles, BitonicChunkPlusMergeFormula) {
  const HwConfig hw;
  // 64-element chunk: ceil(64*6*7/4 / 16) = 42 cycles, plus the n-cycle
  // streaming merge.
  EXPECT_EQ(sort_unit_cycles(SorterKind::kBitonic, 64, hw), 42.0 + 64.0);
  EXPECT_EQ(sort_unit_cycles(SorterKind::kBitonic, 129, hw), 3.0 * 42.0 + 129.0);
  EXPECT_EQ(sort_unit_cycles(SorterKind::kBitonic, 256, hw), 4.0 * 42.0 + 256.0);
}

TEST(PmCycles, CountsFeaturesAndIdentTests) {
  const HwConfig hw;
  FrameWorkload w;
  w.input_gaussians = 4000;
  w.ident_tests = 8000;
  // (4000/1 + 8000/1) / 4 cores = 3000.
  EXPECT_DOUBLE_EQ(pm_total_cycles(w, hw), 3000.0);
}

TEST(BgmCycles, EntriesPlusTestsOverUnits) {
  const HwConfig hw;
  EXPECT_DOUBLE_EQ(bgm_unit_cycles(BgmUnit{10, 40}, hw), 10.0 + 10.0);  // 40/4
  EXPECT_DOUBLE_EQ(bgm_unit_cycles(BgmUnit{1, 1}, hw), 2.0);            // ceil(1/4)=1
  EXPECT_DOUBLE_EQ(bgm_unit_cycles(BgmUnit{0, 0}, hw), 0.0);
}

TEST(GsmCycles, MatchesSortUnitModel) {
  const HwConfig hw;
  EXPECT_DOUBLE_EQ(gsm_unit_cycles(256, SorterKind::kQuicksort, hw), 256.0 * 8);
  EXPECT_EQ(gsm_unit_cycles(0, SorterKind::kQuicksort, hw), 0.0);
}

TEST(RmCycles, FilterOverlapsRasterThroughFifo) {
  const HwConfig hw;
  RasterUnit t;
  t.filter_len = 100;   // ceil(100/8)  = 13 cycles of filtering
  t.alpha_evals = 1000; // ceil(1000/16) = 63
  t.pixels = 256;       // ceil(256/16) = 16
  // Filter feeds the FIFO in parallel: tile cost = max(13, 63 + 16).
  EXPECT_DOUBLE_EQ(rm_tile_cycles(t, hw, true, 16), 79.0);
  EXPECT_DOUBLE_EQ(rm_tile_cycles(t, hw, false, 16), 79.0);
  // A tile whose list is filtered away almost entirely is filter-bound.
  RasterUnit sparse;
  sparse.filter_len = 4000;  // ceil(4000/8) = 500
  sparse.alpha_evals = 64;   // 4 cycles
  sparse.pixels = 256;       // 16 cycles
  EXPECT_DOUBLE_EQ(rm_tile_cycles(sparse, hw, true, 16), 500.0);
}

TEST(PipelineModels, Labels) {
  EXPECT_EQ(gstg_pipeline_model().label, "GS-TG");
  EXPECT_TRUE(gstg_pipeline_model().has_bgm);
  EXPECT_FALSE(baseline_pipeline_model().has_bgm);
  EXPECT_EQ(baseline_pipeline_model().sorter, SorterKind::kQuicksort);
  EXPECT_TRUE(gscore_pipeline_model().subtile_skip);
  EXPECT_EQ(gscore_pipeline_model().sorter, SorterKind::kBitonic);
}

TEST(Dram, BandwidthAndEnergyArithmetic) {
  const HwConfig hw;
  DramModel dram(hw);
  dram.read(512);
  dram.write(512);
  EXPECT_EQ(dram.total_bytes(), 1024u);
  EXPECT_DOUBLE_EQ(dram.cycles(), 1024.0 / 51.2);
  EXPECT_DOUBLE_EQ(dram.energy_j(), 20.0e-12 * 1024.0);
}

TEST(Dram, RejectsZeroBandwidth) {
  HwConfig hw;
  hw.dram_bytes_per_second = 0.0;
  EXPECT_THROW(DramModel{hw}, std::invalid_argument);
}

}  // namespace
}  // namespace gstg
