#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "scene/scene.h"
#include "sim/accel.h"
#include "sim/sequence.h"
#include "sim/workload.h"

namespace gstg {
namespace {

FrameWorkload spill_workload(std::uint32_t list_len) {
  FrameWorkload w;
  w.scene = "unit";
  w.input_gaussians = 1000;
  w.ident_tests = 1000;
  w.sorts.resize(4);
  w.tiles.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    w.sorts[i].n = list_len;
    w.tiles[i] = {0, list_len, 1000, 256, static_cast<std::uint32_t>(i)};
  }
  w.total_pixels = 4 * 256;
  w.param_bytes = 10000;
  w.feature_bytes = static_cast<std::size_t>(list_len) * 4 * 24;
  w.list_bytes = 1000;
  w.framebuffer_bytes = 3072;
  return w;
}

TEST(BufferModel, NoSpillWhenWorkingSetFits) {
  // 42KB bank / 8B sort entries = 5376 entries fit.
  const HwConfig hw;
  const SimReport r = simulate_frame(spill_workload(5000), baseline_pipeline_model(), hw);
  EXPECT_EQ(r.spill_bytes, 0u);
  EXPECT_EQ(r.dram_bytes, spill_workload(5000).total_bytes());
}

TEST(BufferModel, SpillGrowsWithOverflow) {
  const HwConfig hw;
  const SimReport small = simulate_frame(spill_workload(6000), baseline_pipeline_model(), hw);
  const SimReport large = simulate_frame(spill_workload(24000), baseline_pipeline_model(), hw);
  EXPECT_GT(small.spill_bytes, 0u);
  EXPECT_GT(large.spill_bytes, small.spill_bytes);
  // Spill = 2 * (ws - bank) per unit.
  const std::size_t ws = 6000u * 8u;
  EXPECT_EQ(small.spill_bytes, 4u * 2u * (ws - hw.buffer_bank_bytes));
}

TEST(BufferModel, TinyBufferInjectionInflatesDramTraffic) {
  // Failure injection: a 1KB bank makes every unit spill massively — the
  // spill traffic exceeds the frame's entire nominal traffic and the DRAM
  // stage slows accordingly.
  HwConfig starved;
  starved.buffer_bank_bytes = 1024;
  HwConfig roomy;
  roomy.buffer_bank_bytes = std::size_t{1} << 30;  // never spills
  const FrameWorkload w = spill_workload(8000);
  const SimReport normal = simulate_frame(w, baseline_pipeline_model(), roomy);
  const SimReport r = simulate_frame(w, baseline_pipeline_model(), starved);
  EXPECT_GT(r.spill_bytes, w.total_bytes() / 2);
  EXPECT_GT(r.dram_cycles, 1.5 * normal.dram_cycles);
  EXPECT_GE(r.total_cycles, normal.total_cycles);
}

TEST(BufferModel, GsTgMaskBytesChargedInWorkingSet) {
  const Scene scene = generate_scene("train", RunScale{8, 256});
  GsTgConfig config;
  const FrameWorkload w = build_gstg_workload(scene.cloud, scene.camera, config);
  EXPECT_EQ(w.working_set_entry_bytes, 10u);  // depth + index + 16-bit mask
}

TEST(Sequence, ParamsChargedOnlyOnFirstFrame) {
  const Scene scene = generate_scene("train", RunScale{8, 256});
  const auto cameras = orbit_cameras(scene, 3);
  const HwConfig hw;
  const SequenceReport report =
      simulate_gstg_sequence(scene.cloud, cameras, GsTgConfig{}, hw, "train");
  ASSERT_EQ(report.frame_count(), 3u);
  // Later frames carry no parameter traffic; with similar visible content
  // their DRAM bytes are strictly lower than frame 0's.
  EXPECT_LT(report.frames[1].dram_bytes, report.frames[0].dram_bytes);
  EXPECT_LT(report.frames[2].dram_bytes, report.frames[0].dram_bytes);
  EXPECT_GT(report.sustained_fps, 0.0);
  EXPECT_NEAR(report.energy_per_frame_j * 3.0, report.total_energy_j, 1e-12);
}

TEST(Sequence, RejectsEmptyCameraPath) {
  const Scene scene = generate_scene("train", RunScale{8, 256});
  const HwConfig hw;
  EXPECT_THROW(simulate_gstg_sequence(scene.cloud, {}, GsTgConfig{}, hw, "train"),
               std::invalid_argument);
}

TEST(Sequence, TotalsAreSums) {
  const Scene scene = generate_scene("playroom", RunScale{8, 256});
  const auto cameras = orbit_cameras(scene, 2);
  const HwConfig hw;
  const SequenceReport report =
      simulate_gstg_sequence(scene.cloud, cameras, GsTgConfig{}, hw, "playroom");
  double cycles = 0.0, energy = 0.0;
  for (const SimReport& f : report.frames) {
    cycles += f.total_cycles;
    energy += f.energy.total_j();
  }
  EXPECT_DOUBLE_EQ(report.total_cycles, cycles);
  EXPECT_NEAR(report.total_energy_j, energy, 1e-12);
}

}  // namespace
}  // namespace gstg
