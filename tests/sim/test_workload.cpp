#include "sim/workload.h"

#include <gtest/gtest.h>

#include <numeric>

#include "../test_helpers.h"
#include "scene/scene.h"

namespace gstg {
namespace {

using testutil::make_camera;

struct Workloads {
  FrameWorkload gstg;
  FrameWorkload baseline;
  FrameWorkload gscore;
};

Workloads build_all(const GaussianCloud& cloud, const Camera& cam) {
  GsTgConfig gc;  // 16+64, Ellipse+Ellipse
  RenderConfig bc;
  bc.tile_size = 16;
  bc.boundary = Boundary::kEllipse;
  return {build_gstg_workload(cloud, cam, gc),
          build_tile_sorted_workload(cloud, cam, bc, "Baseline"),
          build_gscore_workload(cloud, cam, 16)};
}

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Camera cam = make_camera(320, 240);
    const GaussianCloud cloud = testutil::make_random_cloud(2000, 111);
    all_ = new Workloads(build_all(cloud, cam));
  }
  static void TearDownTestSuite() {
    delete all_;
    all_ = nullptr;
  }
  static const Workloads& all() { return *all_; }

 private:
  static Workloads* all_;
};

Workloads* WorkloadTest::all_ = nullptr;

TEST_F(WorkloadTest, UnitCountsMatchGrids) {
  // 320x240 at tile 16 -> 20x15 tiles; at group 64 -> 5x4 groups.
  EXPECT_EQ(all().gstg.tiles.size(), 300u);
  EXPECT_EQ(all().gstg.sorts.size(), 20u);
  EXPECT_EQ(all().gstg.bgm.size(), 20u);
  EXPECT_EQ(all().baseline.tiles.size(), 300u);
  EXPECT_EQ(all().baseline.sorts.size(), 300u);
  EXPECT_TRUE(all().baseline.bgm.empty());
  EXPECT_TRUE(all().gscore.bgm.empty());
}

TEST_F(WorkloadTest, GsTgSortVolumeFarBelowBaseline) {
  const auto volume = [](const FrameWorkload& w) {
    std::size_t pairs = 0;
    for (const SortUnit& s : w.sorts) pairs += s.n;
    return pairs;
  };
  EXPECT_LT(volume(all().gstg), volume(all().baseline));
}

TEST_F(WorkloadTest, RasterWorkIdenticalBetweenGsTgAndBaseline) {
  // Lossless: the filtered per-tile sequences equal the baseline lists, so
  // measured alpha evaluations match tile by tile.
  ASSERT_EQ(all().gstg.tiles.size(), all().baseline.tiles.size());
  for (std::size_t t = 0; t < all().gstg.tiles.size(); ++t) {
    EXPECT_EQ(all().gstg.tiles[t].alpha_evals, all().baseline.tiles[t].alpha_evals) << t;
    EXPECT_EQ(all().gstg.tiles[t].raster_entries, all().baseline.tiles[t].raster_entries) << t;
    EXPECT_EQ(all().gstg.tiles[t].pixels, all().baseline.tiles[t].pixels) << t;
  }
}

TEST_F(WorkloadTest, GsTgFilterLenIsGroupListLength) {
  for (const RasterUnit& t : all().gstg.tiles) {
    EXPECT_EQ(t.filter_len, all().gstg.sorts[t.sort_unit].n);
    EXPECT_LE(t.raster_entries, t.filter_len);
  }
  for (const RasterUnit& t : all().baseline.tiles) {
    EXPECT_EQ(t.filter_len, 0u);
  }
}

TEST_F(WorkloadTest, BgmTestsBoundedBySixteenPerEntry) {
  for (const BgmUnit& b : all().gstg.bgm) {
    EXPECT_LE(b.tests, b.entries * 16u);
  }
}

TEST_F(WorkloadTest, DramTrafficSmallerForGsTg) {
  // Group-shared feature fetches beat per-tile fetches.
  EXPECT_LT(all().gstg.feature_bytes, all().baseline.feature_bytes);
  EXPECT_LT(all().gstg.list_bytes, all().baseline.list_bytes);
  // Same params and framebuffer.
  EXPECT_EQ(all().gstg.param_bytes, all().baseline.param_bytes);
  EXPECT_EQ(all().gstg.framebuffer_bytes, all().baseline.framebuffer_bytes);
  EXPECT_LT(all().gstg.total_bytes(), all().baseline.total_bytes());
}

TEST_F(WorkloadTest, GscoreSubtileSkippingReducesAlphaEvals) {
  std::uint64_t gscore_evals = 0, full_evals = 0;
  for (const RasterUnit& t : all().gscore.tiles) gscore_evals += t.alpha_evals;
  for (const RasterUnit& t : all().baseline.tiles) full_evals += t.alpha_evals;
  // GSCore (OBB binning, more pairs) still evaluates less than full-tile
  // rasterization thanks to subtile skipping.
  EXPECT_LT(gscore_evals, full_evals);
  EXPECT_GT(gscore_evals, 0u);
}

TEST_F(WorkloadTest, GscoreUsesObbSoMorePairsThanEllipse) {
  std::size_t gscore_pairs = 0, ellipse_pairs = 0;
  for (const SortUnit& s : all().gscore.sorts) gscore_pairs += s.n;
  for (const SortUnit& s : all().baseline.sorts) ellipse_pairs += s.n;
  EXPECT_GE(gscore_pairs, ellipse_pairs);
}

TEST_F(WorkloadTest, PixelTotalsConsistent) {
  EXPECT_EQ(all().gstg.total_pixels, 320u * 240u);
  EXPECT_EQ(all().baseline.total_pixels, 320u * 240u);
  EXPECT_EQ(all().gscore.total_pixels, 320u * 240u);
}

TEST(Workload, GscoreRejectsBadSubtileSplit) {
  const Camera cam = make_camera(64, 64);
  const GaussianCloud cloud = testutil::make_random_cloud(50, 5);
  EXPECT_THROW(build_gscore_workload(cloud, cam, 16, 5), std::invalid_argument);
  EXPECT_THROW(build_gscore_workload(cloud, cam, 16, 0), std::invalid_argument);
}

TEST(Workload, SceneLevelShapeHolds) {
  // On a synthetic paper scene, GS-TG's aggregate sort volume shrinks by
  // roughly the grouping factor (16 tiles/group) relative to the baseline —
  // allow a loose band since footprints span groups too.
  const Scene scene = generate_scene("train", RunScale{8, 256});
  GsTgConfig gc;
  RenderConfig bc;
  bc.tile_size = 16;
  bc.boundary = Boundary::kEllipse;
  const FrameWorkload g = build_gstg_workload(scene.cloud, scene.camera, gc);
  const FrameWorkload b = build_tile_sorted_workload(scene.cloud, scene.camera, bc, "Baseline");
  std::size_t gp = 0, bp = 0;
  for (const SortUnit& s : g.sorts) gp += s.n;
  for (const SortUnit& s : b.sorts) bp += s.n;
  EXPECT_LT(static_cast<double>(gp), 0.8 * static_cast<double>(bp));
  EXPECT_GT(gp, 0u);
}

}  // namespace
}  // namespace gstg
