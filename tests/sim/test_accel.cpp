#include "sim/accel.h"

#include <gtest/gtest.h>

#include "../test_helpers.h"
#include "scene/scene.h"
#include "sim/energy.h"

namespace gstg {
namespace {

using testutil::make_camera;

FrameWorkload tiny_synthetic_workload() {
  FrameWorkload w;
  w.scene = "unit";
  w.design = "Baseline";
  w.input_gaussians = 1000;
  w.visible_gaussians = 800;
  w.ident_tests = 5000;
  w.sorts.resize(8);
  w.tiles.resize(8);
  for (std::size_t i = 0; i < 8; ++i) {
    w.sorts[i].n = 100;
    w.tiles[i].raster_entries = 100;
    w.tiles[i].alpha_evals = 10000;
    w.tiles[i].pixels = 256;
    w.tiles[i].sort_unit = static_cast<std::uint32_t>(i);
  }
  w.total_pixels = 8 * 256;
  w.param_bytes = 100000;
  w.feature_bytes = 20000;
  w.list_bytes = 6400;
  w.framebuffer_bytes = 6144;
  return w;
}

TEST(Simulate, BasicInvariants) {
  const HwConfig hw;
  const SimReport r = simulate_frame(tiny_synthetic_workload(), baseline_pipeline_model(), hw);
  EXPECT_GT(r.total_cycles, 0.0);
  EXPECT_GT(r.fps, 0.0);
  EXPECT_NEAR(r.fps, hw.frequency_hz / r.total_cycles, 1e-6);
  EXPECT_GE(r.total_cycles, r.dram_cycles);
  EXPECT_GE(r.total_cycles, r.pm_cycles);
  EXPECT_GT(r.energy.total_j(), 0.0);
  EXPECT_EQ(r.energy.bgm_j, 0.0);  // no BGM on the baseline
  EXPECT_TRUE(r.bottleneck == "dram" || r.bottleneck == "preprocess" ||
              r.bottleneck == "sort" || r.bottleneck == "raster");
}

TEST(Simulate, RejectsBgmWorkOnBaselineModel) {
  FrameWorkload w = tiny_synthetic_workload();
  w.bgm.resize(w.sorts.size());
  const HwConfig hw;
  EXPECT_THROW(simulate_frame(w, baseline_pipeline_model(), hw), std::invalid_argument);
}

TEST(Simulate, RejectsMismatchedBgmUnits) {
  FrameWorkload w = tiny_synthetic_workload();
  w.bgm.resize(3);  // != sorts.size()
  const HwConfig hw;
  EXPECT_THROW(simulate_frame(w, gstg_pipeline_model(), hw), std::invalid_argument);
}

TEST(Simulate, DramStarvationBecomesBottleneck) {
  // Failure injection: throttle DRAM to a trickle; the run must become
  // bandwidth-bound and slower.
  FrameWorkload w = tiny_synthetic_workload();
  const HwConfig normal;
  HwConfig starved = normal;
  starved.dram_bytes_per_second = 1.0e6;  // 1 MB/s
  const SimReport fast = simulate_frame(w, baseline_pipeline_model(), normal);
  const SimReport slow = simulate_frame(w, baseline_pipeline_model(), starved);
  EXPECT_EQ(slow.bottleneck, "dram");
  EXPECT_GT(slow.total_cycles, 10.0 * fast.total_cycles);
  EXPECT_DOUBLE_EQ(slow.total_cycles, slow.dram_cycles);
}

TEST(Simulate, PreprocessBoundWhenIdentTestsDominate) {
  FrameWorkload w = tiny_synthetic_workload();
  w.ident_tests = 100'000'000;
  const HwConfig hw;
  const SimReport r = simulate_frame(w, baseline_pipeline_model(), hw);
  EXPECT_EQ(r.bottleneck, "preprocess");
}

TEST(Simulate, SortBoundWhenListsHuge) {
  FrameWorkload w = tiny_synthetic_workload();
  for (auto& s : w.sorts) s.n = 2'000'000;
  const HwConfig hw;
  const SimReport r = simulate_frame(w, baseline_pipeline_model(), hw);
  EXPECT_EQ(r.bottleneck, "sort");
}

TEST(Simulate, EnergyScalesWithDramTraffic) {
  FrameWorkload w = tiny_synthetic_workload();
  const HwConfig hw;
  const SimReport a = simulate_frame(w, baseline_pipeline_model(), hw);
  w.feature_bytes *= 100;
  const SimReport b = simulate_frame(w, baseline_pipeline_model(), hw);
  EXPECT_GT(b.energy.dram_j, a.energy.dram_j);
  EXPECT_NEAR(b.energy.dram_j - a.energy.dram_j, 99.0 * 20000.0 * 20.0e-12, 1e-15);
}

TEST(Simulate, EndToEndGsTgBeatsBaselineOnScene) {
  // The headline direction of Fig. 14 on a synthetic scene: fewer cycles
  // and less energy for GS-TG at the same rendered output. Needs a scale
  // with enough groups per core for the dispatcher to balance (the paper's
  // full-resolution scenes have hundreds to thousands of groups).
  const Scene scene = generate_scene("train", RunScale{4, 32});
  GsTgConfig gc;
  RenderConfig bc;
  bc.tile_size = 16;
  bc.boundary = Boundary::kEllipse;
  FrameWorkload wg = build_gstg_workload(scene.cloud, scene.camera, gc);
  FrameWorkload wb = build_tile_sorted_workload(scene.cloud, scene.camera, bc, "Baseline");
  wg.scene = wb.scene = scene.info.name;

  const HwConfig hw;
  const SimReport rg = simulate_frame(wg, gstg_pipeline_model(), hw);
  const SimReport rb = simulate_frame(wb, baseline_pipeline_model(), hw);

  EXPECT_LT(rg.total_cycles, rb.total_cycles);
  EXPECT_LT(rg.energy.total_j(), rb.energy.total_j());
  // Sorting-stage time collapses under grouping.
  EXPECT_LT(rg.gsm_cycles, rb.gsm_cycles);
}

TEST(Simulate, ReportToStringMentionsKeyFields) {
  const HwConfig hw;
  SimReport r = simulate_frame(tiny_synthetic_workload(), baseline_pipeline_model(), hw);
  r.scene = "unit";
  const std::string s = to_string(r);
  EXPECT_NE(s.find("Baseline"), std::string::npos);
  EXPECT_NE(s.find("unit"), std::string::npos);
  EXPECT_NE(s.find("bottleneck"), std::string::npos);
  EXPECT_NE(s.find("energy"), std::string::npos);
}

TEST(Energy, BufferChargedForWholeFrame) {
  const HwConfig hw;
  const SimReport r = simulate_frame(tiny_synthetic_workload(), baseline_pipeline_model(), hw);
  const double expected_buffer = hw.buffer.power_w * r.total_cycles / hw.frequency_hz;
  EXPECT_NEAR(r.energy.buffer_j, expected_buffer, 1e-12);
}

}  // namespace
}  // namespace gstg
