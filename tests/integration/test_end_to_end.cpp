// Cross-module integration tests: the full user journey a downstream
// adopter follows — checkpoint I/O -> quantisation -> both pipelines ->
// simulator — plus paper-level invariants that span several modules.
#include <gtest/gtest.h>

#include <sstream>

#include "../test_helpers.h"
#include "core/pipeline.h"
#include "gaussian/ply_io.h"
#include "gaussian/quantize.h"
#include "gaussian/transform.h"
#include "render/metrics.h"
#include "render/pipeline.h"
#include "scene/scene.h"
#include "sim/accel.h"
#include "sim/workload.h"

namespace gstg {
namespace {

TEST(EndToEnd, PlyRoundTripThenRenderMatchesOriginal) {
  // Save a scene to the 3D-GS checkpoint format, reload it, and render:
  // the image must match the in-memory original to fp-serialisation noise.
  const Scene scene = generate_scene("playroom", RunScale{8, 512});
  std::stringstream buffer;
  write_gaussian_ply(buffer, scene.cloud);
  const GaussianCloud reloaded = read_gaussian_ply(buffer);
  ASSERT_EQ(reloaded.size(), scene.cloud.size());

  RenderConfig config;
  const RenderResult a = render_baseline(scene.cloud, scene.camera, config);
  const RenderResult b = render_baseline(reloaded, scene.camera, config);
  // logit/sigmoid and log/exp round-trips perturb parameters by ~1e-6.
  EXPECT_GT(psnr(a.image, b.image), 60.0);
  EXPECT_GT(ssim(a.image, b.image), 0.999);
}

TEST(EndToEnd, Fp16QuantisedCloudStaysLosslessUnderGsTg) {
  // The accelerator's data path: quantise to fp16, then GS-TG must still be
  // bit-exact against the fp16 baseline (losslessness is a property of the
  // pipeline, not of the precision).
  Scene scene = generate_scene("truck", RunScale{8, 512});
  quantize_cloud_to_fp16(scene.cloud);

  RenderConfig base;
  base.tile_size = 16;
  base.boundary = Boundary::kEllipse;
  const RenderResult a = render_baseline(scene.cloud, scene.camera, base);
  const RenderResult b = render_gstg(scene.cloud, scene.camera, GsTgConfig{});
  EXPECT_EQ(max_abs_diff(a.image, b.image), 0.0f);
}

TEST(EndToEnd, PrunedCloudRendersWithFewerPairsAndBoundedLoss) {
  // The lossy pruning baseline from related work, end to end: fewer pairs,
  // image close but not exact — contrast with GS-TG's exactness.
  const Scene scene = generate_scene("train", RunScale{8, 512});
  GaussianCloud pruned = scene.cloud;
  const std::size_t removed = prune_by_opacity(pruned, 0.2f);
  ASSERT_GT(removed, 0u);

  RenderConfig config;
  const RenderResult full = render_baseline(scene.cloud, scene.camera, config);
  const RenderResult less = render_baseline(pruned, scene.camera, config);
  EXPECT_LT(less.counters.tile_pairs, full.counters.tile_pairs);
  EXPECT_GT(max_abs_diff(full.image, less.image), 0.0f);  // lossy, unlike GS-TG
  EXPECT_GT(psnr(full.image, less.image), 20.0);          // but not destroyed
}

TEST(EndToEnd, SimulatorConsistentWithRendererCounters) {
  // The workload builder and the renderer must agree on the work a frame
  // contains: alpha evaluations, pair counts, pixels.
  const Scene scene = generate_scene("train", RunScale{8, 256});
  GsTgConfig config;
  const RenderResult rendered = render_gstg(scene.cloud, scene.camera, config);
  const FrameWorkload workload = build_gstg_workload(scene.cloud, scene.camera, config);

  std::uint64_t workload_alpha = 0;
  std::size_t workload_pairs = 0;
  for (const RasterUnit& t : workload.tiles) workload_alpha += t.alpha_evals;
  for (const SortUnit& s : workload.sorts) workload_pairs += s.n;
  EXPECT_EQ(workload_alpha, rendered.counters.alpha_computations);
  EXPECT_EQ(workload_pairs, rendered.counters.sort_pairs);
  EXPECT_EQ(workload.total_pixels, rendered.counters.total_pixels);
}

TEST(EndToEnd, SpeedupStableAcrossViews) {
  // Fig. 14's conclusion should not depend on the particular evaluation
  // viewpoint: GS-TG beats the baseline from every orbit pose.
  const Scene scene = generate_scene("truck", RunScale{8, 128});
  const auto cameras = orbit_cameras(scene, 4);
  const HwConfig hw;
  for (const Camera& cam : cameras) {
    GsTgConfig gc;
    RenderConfig bc;
    bc.tile_size = 16;
    bc.boundary = Boundary::kEllipse;
    const FrameWorkload wg = build_gstg_workload(scene.cloud, cam, gc);
    const FrameWorkload wb = build_tile_sorted_workload(scene.cloud, cam, bc, "Baseline");
    const SimReport rg = simulate_frame(wg, gstg_pipeline_model(), hw);
    const SimReport rb = simulate_frame(wb, baseline_pipeline_model(), hw);
    EXPECT_LT(rg.total_cycles, rb.total_cycles * 1.02);  // never meaningfully worse
    EXPECT_LT(rg.energy.total_j(), rb.energy.total_j() * 1.02);
  }
}

class GroupGeometrySweepTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupGeometrySweepTest, SortVolumeShrinksMonotonicallyWithGroupSize) {
  // DESIGN.md ablation target: larger groups always sort less (the whole
  // premise of Fig. 11's x-axis).
  const Scene scene = generate_scene("train", RunScale{8, 256});
  const int tile = GetParam();
  std::size_t prev_pairs = SIZE_MAX;
  for (int group = tile; group <= 64 && group * group / (tile * tile) <= 64; group *= 2) {
    GsTgConfig config;
    config.tile_size = tile;
    config.group_size = group;
    const GsTgFrameData data = build_gstg_frame(scene.cloud, scene.camera, config);
    const std::size_t pairs = data.frame.group_bins.splat_ids.size();
    EXPECT_LE(pairs, prev_pairs) << "tile " << tile << " group " << group;
    prev_pairs = pairs;
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, GroupGeometrySweepTest, ::testing::Values(8, 16));

}  // namespace
}  // namespace gstg
