// Determinism regression: the software pipelines promise bit-identical
// output regardless of thread count and across repeated runs (render/
// pipeline.h, core/pipeline.h). These tests render the same seeded cloud
// twice with multiple worker threads and require byte-identical framebuffers
// and identical work counters — any scheduling-dependent accumulation order
// or uninitialised memory shows up here before it corrupts a benchmark.
#include <gtest/gtest.h>

#include <cstring>

#include "../test_helpers.h"
#include "core/pipeline.h"
#include "render/pipeline.h"
#include "scene/scene.h"

namespace gstg {
namespace {

using testutil::make_camera;

/// Byte-level framebuffer comparison: stricter than max_abs_diff == 0
/// because it also distinguishes 0.0 from -0.0 and catches NaNs.
bool bytes_identical(const Framebuffer& a, const Framebuffer& b) {
  if (a.width() != b.width() || a.height() != b.height()) return false;
  return std::memcmp(a.pixels().data(), b.pixels().data(),
                     a.pixels().size() * sizeof(Vec3)) == 0;
}

void expect_identical_counters(const RenderCounters& a, const RenderCounters& b) {
  EXPECT_EQ(a.input_gaussians, b.input_gaussians);
  EXPECT_EQ(a.visible_gaussians, b.visible_gaussians);
  EXPECT_EQ(a.boundary_tests, b.boundary_tests);
  EXPECT_EQ(a.tile_pairs, b.tile_pairs);
  EXPECT_EQ(a.splats_multi_tile, b.splats_multi_tile);
  EXPECT_EQ(a.sort_pairs, b.sort_pairs);
  EXPECT_EQ(a.sort_comparison_volume, b.sort_comparison_volume);
  EXPECT_EQ(a.alpha_computations, b.alpha_computations);
  EXPECT_EQ(a.blend_ops, b.blend_ops);
  EXPECT_EQ(a.early_exit_pixels, b.early_exit_pixels);
  EXPECT_EQ(a.pixel_list_work, b.pixel_list_work);
  EXPECT_EQ(a.total_pixels, b.total_pixels);
  EXPECT_EQ(a.bitmask_tests, b.bitmask_tests);
  EXPECT_EQ(a.filter_checks, b.filter_checks);
}

TEST(Determinism, BaselineRepeatedMultithreadedRendersAreByteIdentical) {
  const Camera cam = make_camera(200, 152);
  const GaussianCloud cloud = testutil::make_random_cloud(1500, 41);
  RenderConfig config;
  config.tile_size = 16;
  config.boundary = Boundary::kEllipse;
  config.threads = 4;
  const RenderResult first = render_baseline(cloud, cam, config);
  const RenderResult second = render_baseline(cloud, cam, config);
  EXPECT_TRUE(bytes_identical(first.image, second.image));
  expect_identical_counters(first.counters, second.counters);
}

TEST(Determinism, GsTgRepeatedMultithreadedRendersAreByteIdentical) {
  const Camera cam = make_camera(200, 152);
  const GaussianCloud cloud = testutil::make_random_cloud(1500, 43);
  GsTgConfig config;  // 16+64, Ellipse+Ellipse
  config.threads = 4;
  const RenderResult first = render_gstg(cloud, cam, config);
  const RenderResult second = render_gstg(cloud, cam, config);
  EXPECT_TRUE(bytes_identical(first.image, second.image));
  expect_identical_counters(first.counters, second.counters);
}

TEST(Determinism, ThreadCountDoesNotChangeBaselineOutput) {
  const Camera cam = make_camera(200, 152);
  const GaussianCloud cloud = testutil::make_random_cloud(1200, 47);
  RenderConfig one;
  one.threads = 1;
  RenderConfig four;
  four.threads = 4;
  const RenderResult a = render_baseline(cloud, cam, one);
  const RenderResult b = render_baseline(cloud, cam, four);
  EXPECT_TRUE(bytes_identical(a.image, b.image));
  expect_identical_counters(a.counters, b.counters);
}

TEST(Determinism, ThreadCountDoesNotChangeGsTgOutput) {
  const Camera cam = make_camera(200, 152);
  const GaussianCloud cloud = testutil::make_random_cloud(1200, 53);
  GsTgConfig one;
  one.threads = 1;
  GsTgConfig four;
  four.threads = 4;
  const RenderResult a = render_gstg(cloud, cam, one);
  const RenderResult b = render_gstg(cloud, cam, four);
  EXPECT_TRUE(bytes_identical(a.image, b.image));
  expect_identical_counters(a.counters, b.counters);
}

TEST(Determinism, SeededCloudGenerationIsReproducible) {
  // The fixture itself must be deterministic or the tests above prove
  // nothing: same seed -> identical cloud, different seed -> different.
  const GaussianCloud a = testutil::make_random_cloud(300, 7);
  const GaussianCloud b = testutil::make_random_cloud(300, 7);
  const GaussianCloud c = testutil::make_random_cloud(300, 8);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  const std::size_t bytes = a.size() * sizeof(Vec3);
  EXPECT_EQ(std::memcmp(a.positions().data(), b.positions().data(), bytes), 0);
  EXPECT_NE(std::memcmp(a.positions().data(), c.positions().data(), bytes), 0);
}

TEST(Determinism, SceneGenerationIsReproducible) {
  const Scene a = generate_scene("train", RunScale{8, 256});
  const Scene b = generate_scene("train", RunScale{8, 256});
  ASSERT_EQ(a.cloud.size(), b.cloud.size());
  RenderConfig config;
  config.threads = 2;
  const RenderResult ra = render_baseline(a.cloud, a.camera, config);
  const RenderResult rb = render_baseline(b.cloud, b.camera, config);
  EXPECT_TRUE(bytes_identical(ra.image, rb.image));
}

}  // namespace
}  // namespace gstg
