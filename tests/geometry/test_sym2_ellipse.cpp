#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geometry/ellipse.h"
#include "geometry/sym2.h"

namespace gstg {
namespace {

Sym2 random_spd(std::mt19937& gen, float scale = 10.0f) {
  // A A^T + eps I is SPD.
  std::uniform_real_distribution<float> dist(-scale, scale);
  const float a = dist(gen), b = dist(gen), c = dist(gen), d = dist(gen);
  return Sym2{a * a + b * b + 0.1f, a * c + b * d, c * c + d * d + 0.1f};
}

TEST(Sym2, QuadraticForm) {
  const Sym2 m{2.0f, 0.5f, 3.0f};
  EXPECT_FLOAT_EQ(m.quad({1.0f, 0.0f}), 2.0f);
  EXPECT_FLOAT_EQ(m.quad({0.0f, 1.0f}), 3.0f);
  EXPECT_FLOAT_EQ(m.quad({1.0f, 1.0f}), 2.0f + 2.0f * 0.5f + 3.0f);
}

TEST(Sym2, EigenDiagonal) {
  const Eigen2 e = eigen_decompose(Sym2{4.0f, 0.0f, 1.0f});
  EXPECT_FLOAT_EQ(e.lambda1, 4.0f);
  EXPECT_FLOAT_EQ(e.lambda2, 1.0f);
  EXPECT_NEAR(std::fabs(e.axis1.x), 1.0f, 1e-6f);
  EXPECT_NEAR(e.axis1.y, 0.0f, 1e-6f);
}

TEST(Sym2, EigenIsotropicPicksCoordinateAxes) {
  const Eigen2 e = eigen_decompose(Sym2{2.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(e.lambda1, 2.0f);
  EXPECT_FLOAT_EQ(e.lambda2, 2.0f);
  EXPECT_NEAR(length(e.axis1), 1.0f, 1e-6f);
  EXPECT_NEAR(dot(e.axis1, e.axis2), 0.0f, 1e-6f);
}

class Sym2PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(Sym2PropertyTest, EigenReconstructsMatrix) {
  std::mt19937 gen(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 100; ++trial) {
    const Sym2 m = random_spd(gen);
    const Eigen2 e = eigen_decompose(m);
    EXPECT_GE(e.lambda1, e.lambda2);
    EXPECT_GT(e.lambda2, 0.0f);
    EXPECT_NEAR(dot(e.axis1, e.axis2), 0.0f, 1e-4f);
    // Reconstruct: lambda1 a1 a1^T + lambda2 a2 a2^T.
    const float rel = std::max(1.0f, m.trace());
    const float xx = e.lambda1 * e.axis1.x * e.axis1.x + e.lambda2 * e.axis2.x * e.axis2.x;
    const float xy = e.lambda1 * e.axis1.x * e.axis1.y + e.lambda2 * e.axis2.x * e.axis2.y;
    const float yy = e.lambda1 * e.axis1.y * e.axis1.y + e.lambda2 * e.axis2.y * e.axis2.y;
    EXPECT_NEAR(xx, m.xx, 1e-3f * rel);
    EXPECT_NEAR(xy, m.xy, 1e-3f * rel);
    EXPECT_NEAR(yy, m.yy, 1e-3f * rel);
  }
}

TEST_P(Sym2PropertyTest, InverseIsExact) {
  std::mt19937 gen(static_cast<unsigned>(GetParam()) + 100);
  for (int trial = 0; trial < 100; ++trial) {
    const Sym2 m = random_spd(gen);
    const Sym2 inv = inverse(m);
    // m * inv = I (checking the symmetric product elementwise).
    EXPECT_NEAR(m.xx * inv.xx + m.xy * inv.xy, 1.0f, 1e-3f);
    EXPECT_NEAR(m.xy * inv.xx + m.yy * inv.xy, 0.0f, 1e-3f);
    EXPECT_NEAR(m.xx * inv.xy + m.xy * inv.yy, 0.0f, 1e-3f);
    EXPECT_NEAR(m.xy * inv.xy + m.yy * inv.yy, 1.0f, 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sym2PropertyTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Sym2, InverseRejectsNonSpd) {
  EXPECT_THROW(inverse(Sym2{1.0f, 2.0f, 1.0f}), std::domain_error);  // det < 0
  EXPECT_THROW(inverse(Sym2{0.0f, 0.0f, 0.0f}), std::domain_error);
}

TEST(Ellipse, FromCovComputesConic) {
  const Ellipse e = Ellipse::from_cov({10.0f, 20.0f}, Sym2{4.0f, 0.0f, 1.0f});
  EXPECT_FLOAT_EQ(e.conic.xx, 0.25f);
  EXPECT_FLOAT_EQ(e.conic.yy, 1.0f);
  EXPECT_EQ(e.rho, kThreeSigmaRho);
}

TEST(Ellipse, ContainsCenterAndBoundary) {
  const Ellipse e = Ellipse::from_cov({0.0f, 0.0f}, Sym2{4.0f, 0.0f, 1.0f});
  EXPECT_TRUE(e.contains({0.0f, 0.0f}));
  // 3-sigma point along x: 3 * sqrt(4) = 6.
  EXPECT_TRUE(e.contains({5.99f, 0.0f}));
  EXPECT_FALSE(e.contains({6.01f, 0.0f}));
}

TEST(Ellipse, AabbIsTight) {
  std::mt19937 gen(23);
  for (int trial = 0; trial < 100; ++trial) {
    const Sym2 cov = random_spd(gen, 4.0f);
    const Ellipse e = Ellipse::from_cov({1.0f, -2.0f}, cov);
    const Rect box = e.aabb();
    // Sample the boundary: all boundary points inside the box, and the box
    // half-extents are attained (within sampling error).
    const Eigen2 eig = eigen_decompose(cov);
    float max_x = 0.0f, max_y = 0.0f;
    for (int k = 0; k < 720; ++k) {
      const float t = static_cast<float>(k) * 3.14159265f / 360.0f;
      const float c = std::cos(t), s = std::sin(t);
      // Boundary point: center + sqrt(rho) * (sqrt(l1) c a1 + sqrt(l2) s a2).
      const Vec2 d = eig.axis1 * (std::sqrt(eig.lambda1) * c) +
                     eig.axis2 * (std::sqrt(eig.lambda2) * s);
      const Vec2 p = e.center + d * std::sqrt(e.rho);
      EXPECT_GE(p.x, box.x0 - 1e-3f);
      EXPECT_LE(p.x, box.x1 + 1e-3f);
      EXPECT_GE(p.y, box.y0 - 1e-3f);
      EXPECT_LE(p.y, box.y1 + 1e-3f);
      max_x = std::max(max_x, std::fabs(p.x - e.center.x));
      max_y = std::max(max_y, std::fabs(p.y - e.center.y));
    }
    EXPECT_NEAR(max_x, 0.5f * box.width(), 0.02f * (0.5f * box.width()));
    EXPECT_NEAR(max_y, 0.5f * box.height(), 0.02f * (0.5f * box.height()));
  }
}

TEST(Ellipse, SemiAxesOrdered) {
  const Ellipse e = Ellipse::from_cov({0, 0}, Sym2{9.0f, 0.0f, 1.0f});
  const Vec2 axes = e.semi_axes();
  EXPECT_FLOAT_EQ(axes.x, 9.0f);  // sqrt(9 * 9)
  EXPECT_FLOAT_EQ(axes.y, 3.0f);  // sqrt(9 * 1)
  EXPECT_GE(axes.x, axes.y);
}

TEST(Obb, AxesAlignWithEigenvectors) {
  const Ellipse e = Ellipse::from_cov({0, 0}, Sym2{4.0f, 0.0f, 1.0f});
  const Obb o = Obb::from_ellipse(e);
  EXPECT_NEAR(std::fabs(o.axis1.x), 1.0f, 1e-5f);
  EXPECT_FLOAT_EQ(o.half1, 6.0f);  // sqrt(9*4)
  EXPECT_FLOAT_EQ(o.half2, 3.0f);  // sqrt(9*1)
}

TEST(OpacityAwareRho, MatchesClosedForm) {
  EXPECT_EQ(opacity_aware_rho(1.0f / 255.0f), 0.0f);
  EXPECT_EQ(opacity_aware_rho(0.001f), 0.0f);
  const float rho = opacity_aware_rho(0.5f);
  EXPECT_NEAR(rho, 2.0f * std::log(127.5f), 1e-5f);
  // Higher opacity -> larger footprint.
  EXPECT_GT(opacity_aware_rho(0.9f), opacity_aware_rho(0.2f));
  // 3-sigma is more conservative than the opacity bound for opacity < ~0.35.
  EXPECT_LT(opacity_aware_rho(0.3f), kThreeSigmaRho);
}

}  // namespace
}  // namespace gstg
