#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geometry/mat.h"
#include "geometry/quaternion.h"
#include "geometry/vec.h"

namespace gstg {
namespace {

constexpr float kEps = 1e-5f;

TEST(Vec, BasicAlgebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0f, (Vec3{2, 4, 6}));
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
  EXPECT_EQ(cross(Vec3{1, 0, 0}, Vec3{0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_FLOAT_EQ(length(Vec3{3, 4, 0}), 5.0f);
}

TEST(Vec, NormalizedHandlesZero) {
  EXPECT_EQ(normalized(Vec3{0, 0, 0}), (Vec3{0, 0, 0}));
  const Vec3 n = normalized(Vec3{0, 0, 5});
  EXPECT_NEAR(length(n), 1.0f, kEps);
}

TEST(Vec, PerpIsOrthogonal) {
  const Vec2 v{3.0f, -2.0f};
  EXPECT_FLOAT_EQ(dot(v, perp(v)), 0.0f);
  EXPECT_FLOAT_EQ(length(perp(v)), length(v));
}

TEST(Vec, Homogeneous) {
  const Vec4 h = to_homogeneous({1, 2, 3});
  EXPECT_EQ(h.w, 1.0f);
  const Vec3 back = from_homogeneous({2, 4, 6, 2});
  EXPECT_EQ(back, (Vec3{1, 2, 3}));
}

TEST(Mat3, IdentityAndMultiply) {
  const Mat3 id = Mat3::identity();
  const Vec3 v{1, -2, 3};
  EXPECT_EQ(id * v, v);
  Mat3 a = Mat3::identity();
  a(0, 1) = 2.0f;
  a(2, 0) = -1.0f;
  const Mat3 prod = a * id;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(prod(i, j), a(i, j));
  }
}

TEST(Mat3, InverseRecoversIdentity) {
  std::mt19937 gen(11);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  for (int trial = 0; trial < 100; ++trial) {
    Mat3 a;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) a(i, j) = dist(gen);
    }
    if (std::fabs(a.determinant()) < 0.05f) continue;  // skip near-singular draws
    const Mat3 prod = a * inverse(a);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        EXPECT_NEAR(prod(i, j), i == j ? 1.0f : 0.0f, 1e-3f);
      }
    }
  }
}

TEST(Mat3, InverseThrowsOnSingular) {
  Mat3 a{};  // all zeros
  EXPECT_THROW(inverse(a), std::domain_error);
}

TEST(Mat4, RigidInverse) {
  const Mat4 m = [] {
    Mat4 r = Mat4::identity();
    // Rotation about z by 30 degrees plus translation.
    const float c = std::cos(0.5236f), s = std::sin(0.5236f);
    r.m[0] = {c, -s, 0, 1.5f};
    r.m[1] = {s, c, 0, -2.0f};
    r.m[2] = {0, 0, 1, 3.0f};
    return r;
  }();
  const Mat4 inv = rigid_inverse(m);
  const Mat4 prod = m * inv;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0f : 0.0f, kEps);
    }
  }
}

TEST(Mat4, TransformPointMatchesHomogeneous) {
  Mat4 m = Mat4::identity();
  m(0, 3) = 5.0f;
  m(1, 1) = 2.0f;
  const Vec3 p{1, 1, 1};
  const Vec3 via_h = from_homogeneous(m * to_homogeneous(p));
  const Vec3 direct = m.transform_point(p);
  EXPECT_NEAR(via_h.x, direct.x, kEps);
  EXPECT_NEAR(via_h.y, direct.y, kEps);
  EXPECT_NEAR(via_h.z, direct.z, kEps);
}

TEST(Quat, IdentityRotation) {
  const Mat3 r = rotation_matrix(Quat{});
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(r(i, j), i == j ? 1.0f : 0.0f, kEps);
  }
}

TEST(Quat, AxisAngleMatchesKnownRotation) {
  // 90 degrees about z maps x->y.
  const Mat3 r = rotation_matrix(from_axis_angle({0, 0, 1}, 3.14159265f / 2.0f));
  const Vec3 y = r * Vec3{1, 0, 0};
  EXPECT_NEAR(y.x, 0.0f, kEps);
  EXPECT_NEAR(y.y, 1.0f, kEps);
  EXPECT_NEAR(y.z, 0.0f, kEps);
}

TEST(Quat, RotationMatrixIsOrthonormal) {
  std::mt19937 gen(5);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (int trial = 0; trial < 200; ++trial) {
    const Quat q{dist(gen), dist(gen), dist(gen), dist(gen)};
    if (length(q) < 1e-3f) continue;
    const Mat3 r = rotation_matrix(q);
    const Mat3 rrt = r * r.transposed();
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        EXPECT_NEAR(rrt(i, j), i == j ? 1.0f : 0.0f, 1e-4f);
      }
    }
    EXPECT_NEAR(r.determinant(), 1.0f, 1e-4f);
  }
}

TEST(Quat, FromBasisRoundTrips) {
  std::mt19937 gen(17);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (int trial = 0; trial < 200; ++trial) {
    const Quat q = normalized(Quat{dist(gen), dist(gen), dist(gen), dist(gen)});
    if (length(q) < 1e-3f) continue;
    const Mat3 r = rotation_matrix(q);
    // Columns of r are the rotated basis vectors.
    const Vec3 cx{r(0, 0), r(1, 0), r(2, 0)};
    const Vec3 cy{r(0, 1), r(1, 1), r(2, 1)};
    const Vec3 cz{r(0, 2), r(1, 2), r(2, 2)};
    const Mat3 r2 = rotation_matrix(from_basis(cx, cy, cz));
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) EXPECT_NEAR(r2(i, j), r(i, j), 1e-4f);
    }
  }
}

}  // namespace
}  // namespace gstg
