#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geometry/intersect.h"

namespace gstg {
namespace {

Sym2 random_spd(std::mt19937& gen, float scale) {
  std::uniform_real_distribution<float> dist(-scale, scale);
  const float a = dist(gen), b = dist(gen), c = dist(gen), d = dist(gen);
  return Sym2{a * a + b * b + 0.2f, a * c + b * d, c * c + d * d + 0.2f};
}

/// Brute-force minimum of the Mahalanobis form over a rect by dense grid
/// sampling — the oracle for the closed-form QP solution.
float brute_force_min(const Sym2& conic, Vec2 mu, const Rect& rect, int steps = 200) {
  float best = std::numeric_limits<float>::max();
  for (int i = 0; i <= steps; ++i) {
    for (int j = 0; j <= steps; ++j) {
      const Vec2 p{rect.x0 + rect.width() * static_cast<float>(i) / static_cast<float>(steps),
                   rect.y0 + rect.height() * static_cast<float>(j) / static_cast<float>(steps)};
      best = std::min(best, conic.quad(p - mu));
    }
  }
  return best;
}

TEST(MinMahalanobis, ZeroWhenCenterInside) {
  const Sym2 q{1.0f, 0.0f, 1.0f};
  const Rect r{0, 0, 10, 10};
  EXPECT_EQ(min_mahalanobis_sq_on_rect(q, {5.0f, 5.0f}, r), 0.0f);
  EXPECT_EQ(min_mahalanobis_sq_on_rect(q, {0.0f, 0.0f}, r), 0.0f);  // boundary counts
}

TEST(MinMahalanobis, IsotropicMatchesEuclidean) {
  const Sym2 q{1.0f, 0.0f, 1.0f};
  const Rect r{0, 0, 4, 4};
  // Center to the left: closest point (0, 2), distance 3.
  EXPECT_NEAR(min_mahalanobis_sq_on_rect(q, {-3.0f, 2.0f}, r), 9.0f, 1e-5f);
  // Corner case: closest point (0, 0), distance sqrt(2).
  EXPECT_NEAR(min_mahalanobis_sq_on_rect(q, {-1.0f, -1.0f}, r), 2.0f, 1e-5f);
}

TEST(MinMahalanobis, RejectsInvalidRect) {
  const Sym2 q{1.0f, 0.0f, 1.0f};
  EXPECT_THROW(min_mahalanobis_sq_on_rect(q, {0, 0}, Rect{5, 0, 0, 10}), std::invalid_argument);
}

class MinMahalanobisPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MinMahalanobisPropertyTest, MatchesBruteForce) {
  std::mt19937 gen(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<float> pos(-12.0f, 12.0f);
  std::uniform_real_distribution<float> sz(0.5f, 8.0f);
  for (int trial = 0; trial < 60; ++trial) {
    const Sym2 cov = random_spd(gen, 3.0f);
    const Sym2 conic = inverse(cov);
    const Vec2 mu{pos(gen), pos(gen)};
    const float x0 = pos(gen), y0 = pos(gen);
    const Rect rect{x0, y0, x0 + sz(gen), y0 + sz(gen)};
    const float exact = min_mahalanobis_sq_on_rect(conic, mu, rect);
    const float sampled = brute_force_min(conic, mu, rect);
    // The sampled oracle can only overestimate the true minimum.
    EXPECT_LE(exact, sampled + 1e-4f);
    EXPECT_NEAR(exact, sampled, 0.05f * std::max(1.0f, sampled));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinMahalanobisPropertyTest, ::testing::Values(11, 22, 33, 44));

TEST(ObbIntersects, AxisAlignedCases) {
  Obb obb;
  obb.center = {5.0f, 5.0f};
  obb.axis1 = {1.0f, 0.0f};
  obb.axis2 = {0.0f, 1.0f};
  obb.half1 = 2.0f;
  obb.half2 = 1.0f;
  EXPECT_TRUE(obb_intersects(obb, Rect{0, 0, 10, 10}));   // contained
  EXPECT_TRUE(obb_intersects(obb, Rect{6.5f, 0, 8, 10})); // overlaps in x
  EXPECT_FALSE(obb_intersects(obb, Rect{7.5f, 0, 9, 10}));
  EXPECT_FALSE(obb_intersects(obb, Rect{0, 6.5f, 10, 8}));
  EXPECT_TRUE(obb_intersects(obb, Rect{0, 5.9f, 10, 8}));
}

TEST(ObbIntersects, RotatedCornerCase) {
  // 45-degree OBB: reaches (h1+h2)/sqrt(2) along x from its center.
  Obb obb;
  obb.center = {0.0f, 0.0f};
  const float inv_sqrt2 = 1.0f / std::sqrt(2.0f);
  obb.axis1 = {inv_sqrt2, inv_sqrt2};
  obb.axis2 = {-inv_sqrt2, inv_sqrt2};
  obb.half1 = 4.0f;
  obb.half2 = 1.0f;
  // Reach along the diagonal axis: tip at ~ (2.83, 2.83).
  EXPECT_TRUE(obb_intersects(obb, Rect{2.5f, 2.5f, 3.0f, 3.0f}));
  // A rect near the perpendicular diagonal, outside the thin extent.
  EXPECT_FALSE(obb_intersects(obb, Rect{-3.0f, 2.5f, -2.5f, 3.0f}));
}

TEST(EllipseIntersects, TouchingBoundary) {
  // Circle radius 3 (cov = I, rho = 9) at origin.
  const Ellipse e = Ellipse::from_cov({0, 0}, Sym2{1.0f, 0.0f, 1.0f});
  EXPECT_TRUE(ellipse_intersects(e, Rect{2.9f, -1, 5, 1}));
  EXPECT_FALSE(ellipse_intersects(e, Rect{3.1f, -1, 5, 1}));
  // Corner just inside/outside the circle.
  const float c_in = 3.0f / std::sqrt(2.0f) - 0.05f;
  const float c_out = 3.0f / std::sqrt(2.0f) + 0.05f;
  EXPECT_TRUE(ellipse_intersects(e, Rect{c_in, c_in, 10, 10}));
  EXPECT_FALSE(ellipse_intersects(e, Rect{c_out, c_out, 10, 10}));
}

class BoundaryChainTest : public ::testing::TestWithParam<int> {};

/// The refinement chain the paper's Fig. 2 illustrates: every tile hit by
/// the ellipse is hit by the OBB, and (within the AABB candidate range,
/// which is how binning enumerates) every OBB hit is an AABB hit.
TEST_P(BoundaryChainTest, EllipseSubsetOfObbSubsetOfAabb) {
  std::mt19937 gen(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<float> pos(0.0f, 64.0f);
  for (int trial = 0; trial < 50; ++trial) {
    const Sym2 cov = random_spd(gen, 4.0f);
    const Ellipse e = Ellipse::from_cov({pos(gen), pos(gen)}, cov);
    const Obb obb = Obb::from_ellipse(e);
    const Rect box = e.aabb();
    // Scan a tile grid over the candidate AABB range.
    const int t0x = static_cast<int>(std::floor(box.x0 / 8.0f));
    const int t0y = static_cast<int>(std::floor(box.y0 / 8.0f));
    const int t1x = static_cast<int>(std::floor(box.x1 / 8.0f)) + 1;
    const int t1y = static_cast<int>(std::floor(box.y1 / 8.0f)) + 1;
    for (int ty = t0y; ty < t1y; ++ty) {
      for (int tx = t0x; tx < t1x; ++tx) {
        const Rect rect{static_cast<float>(tx) * 8, static_cast<float>(ty) * 8,
                        static_cast<float>(tx + 1) * 8, static_cast<float>(ty + 1) * 8};
        const bool hit_aabb = aabb_intersects(e, rect);
        const bool hit_obb = obb_intersects(obb, rect);
        const bool hit_ell = ellipse_intersects(e, rect);
        if (hit_ell) {
          EXPECT_TRUE(hit_obb) << "ellipse hit without obb hit";
          EXPECT_TRUE(hit_aabb) << "ellipse hit without aabb hit";
        }
        // All candidate tiles are inside the AABB range by construction.
        EXPECT_TRUE(hit_aabb);
        (void)hit_obb;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundaryChainTest, ::testing::Values(7, 8, 9));

TEST(FootprintIntersects, DispatchMatchesDirectCalls) {
  const Ellipse e = Ellipse::from_cov({4.0f, 4.0f}, Sym2{2.0f, 0.5f, 1.0f});
  const Rect r{0, 0, 8, 8};
  EXPECT_EQ(footprint_intersects(Boundary::kAabb, e, r), aabb_intersects(e, r));
  EXPECT_EQ(footprint_intersects(Boundary::kObb, e, r), obb_intersects(Obb::from_ellipse(e), r));
  EXPECT_EQ(footprint_intersects(Boundary::kEllipse, e, r), ellipse_intersects(e, r));
}

TEST(BoundaryNames, ToString) {
  EXPECT_STREQ(to_string(Boundary::kAabb), "AABB");
  EXPECT_STREQ(to_string(Boundary::kObb), "OBB");
  EXPECT_STREQ(to_string(Boundary::kEllipse), "Ellipse");
}

}  // namespace
}  // namespace gstg
